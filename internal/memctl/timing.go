package memctl

import (
	"time"

	"parbor/internal/dram"
)

// Timing holds the DRAM command timing constants used by the
// Appendix's test-time model. All values are in nanoseconds.
type Timing struct {
	// TRCD is the activate-to-read/write delay.
	TRCD float64
	// TCCD is the column-to-column delay (per 64-byte burst).
	TCCD float64
	// TRP is the precharge delay.
	TRP float64
}

// DDR3_1600 is the timing the paper uses (Appendix): tRCD = tRP =
// 13.75 ns, tCCD = 5 ns.
func DDR3_1600() Timing {
	return Timing{TRCD: 13.75, TCCD: 5, TRP: 13.75}
}

// RowAccessTime returns the time to stream one module row of
// rowBytes through the controller: tRCD + tCCD per 64-byte cache
// block + tRP. For an 8 KB module row this is the Appendix's
// 13.75 + 5*128 + 13.75 = 667.5 ns.
func (t Timing) RowAccessTime(rowBytes int) time.Duration {
	blocks := float64(rowBytes) / 64
	ns := t.TRCD + t.TCCD*blocks + t.TRP
	return time.Duration(ns * float64(time.Nanosecond))
}

// TwoBlockAccessTime returns the time to read or write two cache
// blocks of one row (the unit of the naive pairwise test): tRCD +
// 2*tCCD + tRP = 37.5 ns for DDR3-1600. (The paper's Appendix prints
// 42.5 ns for the same expression — an arithmetic slip that is
// irrelevant next to the 64 ms retention wait dominating each test.)
func (t Timing) TwoBlockAccessTime() time.Duration {
	ns := t.TRCD + 2*t.TCCD + t.TRP
	return time.Duration(ns * float64(time.Nanosecond))
}

// ModulePassTime returns the wall-clock duration of one write-wait-
// read pass over a whole module: write every row, wait the retention
// interval, read every row. A module row spans all chips, so its
// size is chips * per-chip row bits.
func (t Timing) ModulePassTime(g dram.Geometry, chips int, waitMs float64) time.Duration {
	rowBytes := chips * g.Cols / 8
	perRow := t.RowAccessTime(rowBytes)
	rows := g.RowCount()
	sweep := time.Duration(rows) * perRow
	wait := time.Duration(waitMs * float64(time.Millisecond))
	return 2*sweep + wait
}
