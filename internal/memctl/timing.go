package memctl

import (
	"time"

	"parbor/internal/dram"
)

// Timing holds the DRAM command timing constants used by the
// Appendix's test-time model. All values are in nanoseconds.
type Timing struct {
	// TRCD is the activate-to-read/write delay.
	TRCD float64
	// TCCD is the column-to-column delay (per 64-byte burst).
	TCCD float64
	// TRP is the precharge delay.
	TRP float64
}

// DDR3_1600 is the timing the paper uses (Appendix): tRCD = tRP =
// 13.75 ns, tCCD = 5 ns.
func DDR3_1600() Timing {
	return Timing{TRCD: 13.75, TCCD: 5, TRP: 13.75}
}

// RowAccessNs returns the time, in (possibly fractional)
// nanoseconds, to stream one module row of rowBytes through the
// controller: tRCD + tCCD per 64-byte cache block + tRP. For an 8 KB
// module row this is the Appendix's 13.75 + 5*128 + 13.75 = 667.5 ns.
// Aggregate estimates must accumulate this float and convert to
// time.Duration once: rounding the per-row time first loses half a
// nanosecond per row, which ModulePassTime would then multiply by the
// row count (130 µs per sweep of the paper's 2 GB module).
func (t Timing) RowAccessNs(rowBytes int) float64 {
	blocks := float64(rowBytes) / 64
	return t.TRCD + t.TCCD*blocks + t.TRP
}

// RowAccessTime is RowAccessNs rounded to a whole-ns time.Duration,
// for callers displaying a single row's cost.
func (t Timing) RowAccessTime(rowBytes int) time.Duration {
	return time.Duration(t.RowAccessNs(rowBytes) * float64(time.Nanosecond))
}

// TwoBlockAccessTime returns the time to read or write two cache
// blocks of one row (the unit of the naive pairwise test): tRCD +
// 2*tCCD + tRP = 37.5 ns for DDR3-1600. (The paper's Appendix prints
// 42.5 ns for the same expression — an arithmetic slip that is
// irrelevant next to the 64 ms retention wait dominating each test.)
func (t Timing) TwoBlockAccessTime() time.Duration {
	ns := t.TRCD + 2*t.TCCD + t.TRP
	return time.Duration(ns * float64(time.Nanosecond))
}

// ModulePassTime returns the wall-clock duration of one write-wait-
// read pass over a whole module: write every row, wait the retention
// interval, read every row. A module row spans all chips, so its
// size is chips * per-chip row bits. The sweep cost is accumulated in
// float64 nanoseconds and converted to a time.Duration once, so the
// fractional per-row nanoseconds are not truncated away before the
// multiplication by the row count.
func (t Timing) ModulePassTime(g dram.Geometry, chips int, waitMs float64) time.Duration {
	rowBytes := chips * g.Cols / 8
	sweepNs := float64(g.RowCount()) * t.RowAccessNs(rowBytes)
	ns := 2*sweepNs + waitMs*1e6
	return time.Duration(ns * float64(time.Nanosecond))
}
