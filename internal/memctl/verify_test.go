package memctl

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

func TestVerifyDoesNotRechargeCells(t *testing.T) {
	// Weak cells fail after 300 ms unrefreshed. Pass() would rewrite
	// (recharge) the row and mask the decay; Verify() must not.
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    1,
		Geometry: dram.Geometry{Banks: 1, Rows: 32, Cols: 1024},
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Faults:   faults.Config{WeakCellRate: 0.02},
		Seed:     8,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	ones := make([]uint64, host.Geometry().Words())
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	rows := []Row{{Chip: 0, Bank: 0, Row: 0}, {Chip: 0, Bank: 0, Row: 4}}
	data := [][]uint64{ones, ones}

	// Write with a short wait: no decay yet.
	fails, err := host.PassWithWait(rows, data, 10)
	if err != nil {
		t.Fatalf("PassWithWait: %v", err)
	}
	if len(fails) != 0 {
		t.Fatalf("failures after 10 ms: %d", len(fails))
	}
	// Verify 500 ms later without rewriting: decay accumulates from
	// the original write, so weak cells must now fail.
	fails, err = host.Verify(rows, data, 500)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(fails) == 0 {
		t.Error("Verify after 510 ms total found no weak-cell failures")
	}
}

func TestVerifyValidation(t *testing.T) {
	host, err := NewHost(cleanModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	if _, err := host.Verify([]Row{{}}, nil, 0); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := host.Verify([]Row{{}}, [][]uint64{make([]uint64, 2)}, 0); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := host.Verify(nil, nil, -1); err == nil {
		t.Error("negative wait accepted")
	}
}

func TestPassWithWaitValidation(t *testing.T) {
	host, err := NewHost(cleanModule(t), 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	if _, err := host.PassWithWait(nil, nil, -1); err == nil {
		t.Error("negative wait accepted")
	}
}
