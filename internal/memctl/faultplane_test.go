package memctl

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"parbor/internal/obs"
)

// scriptPlane is a deterministic test plane: it faults exactly the
// (op, attempt, chip) combinations listed, with the given error.
type scriptPlane struct {
	faults map[string]error
}

func (p *scriptPlane) key(op string, attempt, chip int) string {
	return fmt.Sprintf("%s/%d/%d", op, attempt, chip)
}

func (p *scriptPlane) BeforeWrite(attempt int, r Row) error {
	return p.faults[p.key("write", attempt, r.Chip)]
}

func (p *scriptPlane) BeforeRead(attempt int, r Row) error {
	return p.faults[p.key("read", attempt, r.Chip)]
}

type transientTestErr struct{}

func (transientTestErr) Error() string   { return "transient test fault" }
func (transientTestErr) Transient() bool { return true }

func allRows(host *Host) ([]Row, [][]uint64) {
	g := host.Geometry()
	var rows []Row
	var data [][]uint64
	for chip := 0; chip < host.Chips(); chip++ {
		for r := 0; r < g.Rows; r++ {
			rows = append(rows, Row{Chip: chip, Bank: 0, Row: r})
			data = append(data, make([]uint64, g.Words()))
		}
	}
	return rows, data
}

func TestIsTransientClassification(t *testing.T) {
	perm := errors.New("permanent")
	if IsTransient(perm) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil error classified transient")
	}
	if !IsTransient(transientTestErr{}) {
		t.Error("Transient()=true error not classified transient")
	}
	wrapped := fmt.Errorf("outer: %w", &ChipFault{Chip: 1, Op: "write", Err: transientTestErr{}})
	if !IsTransient(wrapped) {
		t.Error("wrapped transient chip fault not classified transient")
	}
	permFault := &ChipFault{Chip: 0, Op: "read", Err: perm}
	if IsTransient(permFault) {
		t.Error("chip fault wrapping a permanent error classified transient")
	}
	pe := &PassError{Faults: []*ChipFault{
		{Chip: 0, Op: "write", Err: transientTestErr{}},
		{Chip: 1, Op: "write", Err: transientTestErr{}},
	}}
	if !IsTransient(pe) {
		t.Error("all-transient pass error not classified transient")
	}
	pe.Faults[1].Err = perm
	if IsTransient(pe) {
		t.Error("partially permanent pass error classified transient")
	}
}

func TestFaultedChips(t *testing.T) {
	if _, ok := FaultedChips(errors.New("anonymous")); ok {
		t.Error("unattributed error yielded chips")
	}
	chips, ok := FaultedChips(fmt.Errorf("w: %w", &ChipFault{Chip: 3, Op: "read", Err: errors.New("x")}))
	if !ok || len(chips) != 1 || chips[0] != 3 {
		t.Errorf("chip fault attribution %v/%v, want [3]", chips, ok)
	}
	pe := &PassError{Faults: []*ChipFault{
		{Chip: 0, Op: "write", Err: errors.New("x")},
		{Chip: 2, Op: "write", Err: errors.New("y")},
	}}
	chips, ok = FaultedChips(pe)
	if !ok || len(chips) != 2 || chips[0] != 0 || chips[1] != 2 {
		t.Errorf("pass error attribution %v/%v, want [0 2]", chips, ok)
	}
}

// TestWriteFaultAbortsBeforeWait: a write-phase fault must fail the
// pass before the retention wait is consumed (the chip clock does not
// advance) and before the pass counter increments.
func TestWriteFaultAbortsBeforeWait(t *testing.T) {
	mod := cleanModule(t)
	plane := &scriptPlane{faults: map[string]error{"write/0/1": errors.New("boom")}}
	col := obs.NewCollector()
	host, err := NewHostWithConfig(mod, HostConfig{WaitMs: 100, Faults: plane, Recorder: col})
	if err != nil {
		t.Fatal(err)
	}
	now0, pass0 := mod.Chip(0).Clock()
	rows, data := allRows(host)
	_, err = host.PassCtx(context.Background(), rows, data)
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("write fault produced %v, want *PassError", err)
	}
	if len(pe.Faults) != 1 || pe.Faults[0].Chip != 1 || pe.Faults[0].Op != "write" {
		t.Fatalf("pass error %v, want one write fault on chip 1", pe)
	}
	now1, pass1 := mod.Chip(0).Clock()
	if now1 != now0 || pass1 != pass0 {
		t.Errorf("aborted write pass advanced chip clock %v/%d -> %v/%d", now0, pass0, now1, pass1)
	}
	rep := col.Snapshot("t")
	if rep.Counters[CounterPasses] != 0 {
		t.Errorf("aborted pass counted as a test: %v", rep.Counters)
	}
	if rep.Counters[CounterPassFaults] != 1 {
		t.Errorf("pass fault not counted: %v", rep.Counters)
	}
}

// TestReadFaultConsumesWait: a read-phase fault happens after the
// retention wait, so the chip clock has advanced — exactly as on real
// hardware, where the wait cannot be un-spent.
func TestReadFaultConsumesWait(t *testing.T) {
	mod := cleanModule(t)
	plane := &scriptPlane{faults: map[string]error{"read/0/0": errors.New("boom")}}
	host, err := NewHostWithConfig(mod, HostConfig{WaitMs: 100, Faults: plane})
	if err != nil {
		t.Fatal(err)
	}
	now0, _ := mod.Chip(0).Clock()
	rows, data := allRows(host)
	_, err = host.PassCtx(context.Background(), rows, data)
	var pe *PassError
	if !errors.As(err, &pe) || pe.Faults[0].Op != "read" {
		t.Fatalf("read fault produced %v, want read *PassError", err)
	}
	now1, _ := mod.Chip(0).Clock()
	if now1 <= now0 {
		t.Errorf("read-phase fault did not consume the retention wait (clock %v -> %v)", now0, now1)
	}
}

// TestPassErrorDeterministicAcrossParallelism: with several chips
// faulting at once, the assembled PassError must list them in
// ascending chip order whether the shards ran serially or in
// parallel.
func TestPassErrorDeterministicAcrossParallelism(t *testing.T) {
	script := map[string]error{
		"write/0/0": errors.New("a"),
		"write/0/1": errors.New("b"),
	}
	var got []string
	for _, workers := range []int{1, 0} {
		mod := cleanModule(t)
		host, err := NewHostWithConfig(mod, HostConfig{
			WaitMs: 100, Parallelism: workers, Faults: &scriptPlane{faults: script},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, data := allRows(host)
		_, err = host.PassCtx(context.Background(), rows, data)
		var pe *PassError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: %v, want *PassError", workers, err)
		}
		for i := 1; i < len(pe.Faults); i++ {
			if pe.Faults[i-1].Chip >= pe.Faults[i].Chip {
				t.Fatalf("workers=%d: fault order not ascending: %v", workers, pe)
			}
		}
		got = append(got, pe.Error())
	}
	if got[0] != got[1] {
		t.Errorf("serial and parallel pass errors differ:\n  serial:   %s\n  parallel: %s", got[0], got[1])
	}
}

// TestPassCancellation: a cancelled ctx stops the pass promptly, the
// error is ctx.Err(), and no worker goroutines are leaked.
func TestPassCancellation(t *testing.T) {
	host, err := NewHost(cleanModule(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, data := allRows(host)
	if _, err := host.PassCtx(ctx, rows, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pass returned %v, want context.Canceled", err)
	}
	if _, err := host.VerifyCtx(ctx, rows, data, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled verify returned %v, want context.Canceled", err)
	}
	if _, err := host.FullPassCtx(ctx, func(r Row, buf []uint64) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled full pass returned %v, want context.Canceled", err)
	}
	// Give any leaked worker a moment to show up, then compare.
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("cancelled passes leaked goroutines: %d -> %d", before, after)
	}
}

// TestNilPlaneBitIdentical: attaching a zero-probability plane (or
// none) must not change a single pass outcome — the chaos extension of
// the observability inertness property.
func TestNilPlaneBitIdentical(t *testing.T) {
	run := func(plane FaultPlane) []BitAddr {
		host, err := NewHostWithConfig(weakModule(t), HostConfig{Faults: plane})
		if err != nil {
			t.Fatal(err)
		}
		rows, data := allRows(host)
		for i := range data {
			for w := range data[i] {
				data[i][w] = ^uint64(0)
			}
		}
		fails, err := host.PassCtx(context.Background(), rows, data)
		if err != nil {
			t.Fatal(err)
		}
		return fails
	}
	plain := run(nil)
	hooked := run(&scriptPlane{faults: map[string]error{}})
	if len(plain) != len(hooked) {
		t.Fatalf("inert plane changed failure count: %d != %d", len(plain), len(hooked))
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("inert plane changed failure %d: %+v != %+v", i, plain[i], hooked[i])
		}
	}
	if len(plain) == 0 {
		t.Fatal("weak module produced no failures; test is vacuous")
	}
}
