package memctl

import (
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/scramble"
)

// allocHost builds a host whose steady-state passes deterministically
// see zero failures: fault injection is limited to VRT cells (so
// Chip.Wait still exercises the VRT index every pass), the data is
// all-zero, and the tested rows are true-cell rows, whose cells are
// discharged under zero data and therefore can never flip — every
// retention failure is gated on the cell holding charge.
func allocHost(t testing.TB, parallelism int) (*Host, []Row, [][]uint64) {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Vendor:   scramble.VendorA,
		Chips:    4,
		Geometry: dram.Geometry{Banks: 1, Rows: 64, Cols: 1024},
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Faults:   faults.Config{VRTRate: 0.01, VRTToggleProb: 0.5},
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	host, err := NewHostWithConfig(mod, HostConfig{WaitMs: 64, Parallelism: parallelism})
	if err != nil {
		t.Fatalf("NewHostWithConfig: %v", err)
	}
	zero := make([]uint64, host.Geometry().Words())
	var rows []Row
	var data [][]uint64
	for chip := 0; chip < host.Chips(); chip++ {
		for r := 0; r < 64; r += 4 { // true-cell rows: (row>>1)&1 == 0
			rows = append(rows, Row{Chip: chip, Bank: 0, Row: r})
			data = append(data, zero)
		}
	}
	return host, rows, data
}

// TestPassZeroAllocsSteadyState pins the tentpole property of the
// pass hot loop: once the host's scratch and the chips' row metadata
// are warm, a serial Pass performs zero heap allocations, and a
// sharded Pass allocates only the fixed worker-pool overhead
// (independent of the row count).
func TestPassZeroAllocsSteadyState(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		host, rows, data := allocHost(t, 1)
		for i := 0; i < 3; i++ { // warm scratch, row metadata, map buckets
			if _, err := host.Pass(rows, data); err != nil {
				t.Fatalf("warm pass: %v", err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			fails, err := host.Pass(rows, data)
			if err != nil {
				t.Fatalf("Pass: %v", err)
			}
			if len(fails) != 0 {
				t.Fatalf("unexpected failures: %v", fails)
			}
		})
		if allocs != 0 {
			t.Fatalf("steady-state serial Pass allocated %.1f objects/op, want 0", allocs)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		host, rows, data := allocHost(t, 4)
		for i := 0; i < 3; i++ {
			if _, err := host.Pass(rows, data); err != nil {
				t.Fatalf("warm pass: %v", err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			fails, err := host.Pass(rows, data)
			if err != nil {
				t.Fatalf("Pass: %v", err)
			}
			if len(fails) != 0 {
				t.Fatalf("unexpected failures: %v", fails)
			}
		})
		// The bounded pool allocates a fixed set of objects per sweep
		// (goroutines, channels, sync plumbing) regardless of how many
		// rows the pass touches. The budget has headroom over the
		// ~30 observed; what it must catch is per-row or per-pass
		// scratch regressions, which show up in the hundreds.
		const budget = 96
		if allocs > budget {
			t.Fatalf("steady-state sharded Pass allocated %.1f objects/op, want <= %d (fixed pool overhead only)", allocs, budget)
		}
	})
}

// TestVerifyZeroAllocsSteadyState extends the steady-state guarantee
// to the write-free Verify path used by March tests.
func TestVerifyZeroAllocsSteadyState(t *testing.T) {
	host, rows, data := allocHost(t, 1)
	for i := 0; i < 3; i++ {
		if _, err := host.Pass(rows, data); err != nil {
			t.Fatalf("warm pass: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		fails, err := host.Verify(rows, data, 64)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if len(fails) != 0 {
			t.Fatalf("unexpected failures: %v", fails)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Verify allocated %.1f objects/op, want 0", allocs)
	}
}
