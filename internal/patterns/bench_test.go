package patterns

import "testing"

func BenchmarkNeighborAware(b *testing.B) {
	dists := []int{-48, -16, -8, 8, 16, 48}
	for i := 0; i < b.N; i++ {
		if _, err := NeighborAware(dists, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomFill(b *testing.B) {
	p := Random(1, 0)
	buf := make([]uint64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Fill(0, 0, i, buf)
	}
	b.SetBytes(int64(len(buf) * 8))
}
