package patterns

import (
	"fmt"
	"sort"
)

// NeighborAware generates the neighbor-location-aware charge patterns
// of Section 5.2.5: a minimal set of rounds such that every cell is,
// in some round, charged while every candidate neighbor location
// (victim ± each detected distance) is discharged. Returned patterns
// are in charge space; callers test each pattern and its inverse to
// cover both cell polarities.
//
// The generator uses two constructions:
//
//   - all distances at least 8 (vendors A and C): one-hot over the
//     chunk's 8-bit groups — 16 rounds for a 128-bit chunk. Because
//     only the victim's own group is charged, the pattern also
//     discharges the victim's entire physical interference tail, not
//     just the immediate neighbors.
//   - some distance smaller than 8 (vendor B): one-hot bit position
//     within 8-bit groups, split by chunk half — 16 rounds.
//
// (The paper reports an 8-round scheme for vendor C — charging whole
// groups by group-index class modulo 8. NeighborAwareCompact
// implements it; it guarantees worst-case content only at the
// immediate neighbors, so cells needing aggregate tail interference
// to fail can escape it. See EXPERIMENTS.md.)
//
// Every candidate set is verified against the distance set before
// being returned; if verification fails (possible for unusual custom
// mappings), the generator falls back to one-hot-per-bit rounds,
// which are always correct.
func NeighborAware(distances []int, chunkBits int) ([]Pattern, error) {
	if chunkBits <= 0 {
		return nil, fmt.Errorf("patterns: chunkBits must be positive, got %d", chunkBits)
	}
	mags := distanceMagnitudes(distances)
	if len(mags) == 0 {
		return nil, fmt.Errorf("patterns: no neighbor distances")
	}
	if mags[len(mags)-1] >= chunkBits {
		return nil, fmt.Errorf("patterns: distance %d exceeds chunk size %d", mags[len(mags)-1], chunkBits)
	}

	masks := candidateMasks(mags, chunkBits)
	if !verify(masks, mags, chunkBits) {
		masks = oneHotPerBit(chunkBits)
	}
	return masksToPatterns(masks, chunkBits), nil
}

// NeighborAwareCompact generates the paper's minimal-round variant:
// when every distance is a multiple of 8 or at least 8, it charges
// whole 8-bit groups by group-index class modulo 8 — 8 rounds on a
// 128-bit chunk, the count Section 7.2 reports for vendor C.
// The construction guarantees the worst case only at the immediate
// neighbor distances; it does not protect deeper interference tails.
// For distance sets it cannot serve it behaves like NeighborAware.
func NeighborAwareCompact(distances []int, chunkBits int) ([]Pattern, error) {
	if chunkBits <= 0 {
		return nil, fmt.Errorf("patterns: chunkBits must be positive, got %d", chunkBits)
	}
	mags := distanceMagnitudes(distances)
	if len(mags) == 0 {
		return nil, fmt.Errorf("patterns: no neighbor distances")
	}
	if mags[len(mags)-1] >= chunkBits {
		return nil, fmt.Errorf("patterns: distance %d exceeds chunk size %d", mags[len(mags)-1], chunkBits)
	}
	if mags[0] >= 8 && chunkBits >= 64 {
		masks := groupClassMasks(chunkBits)
		if classSafe(mags) && verify(masks, mags, chunkBits) {
			return masksToPatterns(masks, chunkBits), nil
		}
	}
	return NeighborAware(distances, chunkBits)
}

// classSafe reports whether the mod-8 group-class pattern separates
// every distance for every alignment: no distance may reach group
// delta 0 (mod 8).
func classSafe(mags []int) bool {
	for _, d := range mags {
		g := d / 8
		if g%8 == 0 {
			return false
		}
		if d%8 != 0 && (g+1)%8 == 0 {
			return false
		}
	}
	return true
}

func masksToPatterns(masks [][]bool, chunkBits int) []Pattern {
	out := make([]Pattern, 0, len(masks))
	for i, mask := range masks {
		words := maskWords(mask, chunkBits)
		out = append(out, FromChunkMask(fmt.Sprintf("neighbor-aware-%d", i), words))
	}
	return out
}

// distanceMagnitudes deduplicates |d| and sorts ascending.
func distanceMagnitudes(distances []int) []int {
	set := make(map[int]struct{})
	for _, d := range distances {
		if d < 0 {
			d = -d
		}
		if d > 0 {
			set[d] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func candidateMasks(mags []int, chunkBits int) [][]bool {
	const group = 8
	if mags[0] < group || chunkBits < group {
		return positionHalfMasks(chunkBits)
	}
	return oneHotGroupMasks(chunkBits)
}

// oneHotGroupMasks charges one 8-bit group per round (vendor A's 16
// rounds on a 128-bit chunk).
func oneHotGroupMasks(chunkBits int) [][]bool {
	groups := chunkBits / 8
	masks := make([][]bool, groups)
	for g := range masks {
		m := make([]bool, chunkBits)
		for b := 0; b < 8; b++ {
			m[g*8+b] = true
		}
		masks[g] = m
	}
	return masks
}

// positionHalfMasks charges one bit position of every 8-bit group in
// one half of the chunk per round (vendor B's 16 rounds).
func positionHalfMasks(chunkBits int) [][]bool {
	half := chunkBits / 2
	if half == 0 {
		return oneHotPerBit(chunkBits)
	}
	var masks [][]bool
	for p := 0; p < 8; p++ {
		for h := 0; h < 2; h++ {
			m := make([]bool, chunkBits)
			for o := range m {
				if o%8 == p && o/half == h {
					m[o] = true
				}
			}
			masks = append(masks, m)
		}
	}
	return masks
}

// groupClassMasks charges whole 8-bit groups whose group index is
// congruent to the round modulo 8 (vendor C's 8 rounds).
func groupClassMasks(chunkBits int) [][]bool {
	masks := make([][]bool, 8)
	for c := range masks {
		m := make([]bool, chunkBits)
		for o := range m {
			if (o/8)%8 == c {
				m[o] = true
			}
		}
		masks[c] = m
	}
	return masks
}

// oneHotPerBit is the always-correct fallback: one round per bit.
func oneHotPerBit(chunkBits int) [][]bool {
	masks := make([][]bool, chunkBits)
	for i := range masks {
		m := make([]bool, chunkBits)
		m[i] = true
		masks[i] = m
	}
	return masks
}

// verify checks the covering property: every offset must, in some
// round, be charged with all its candidate neighbor offsets
// discharged.
func verify(masks [][]bool, mags []int, chunkBits int) bool {
	for o := 0; o < chunkBits; o++ {
		if !coveredInSomeRound(masks, mags, chunkBits, o) {
			return false
		}
	}
	return true
}

func coveredInSomeRound(masks [][]bool, mags []int, chunkBits, o int) bool {
	for _, m := range masks {
		if !m[o] {
			continue
		}
		ok := true
		for _, d := range mags {
			if o+d < chunkBits && m[o+d] {
				ok = false
				break
			}
			if o-d >= 0 && m[o-d] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// maskWords packs a chunk mask into 64-bit words, replicating the
// chunk pattern up to a whole number of words when the chunk is
// smaller than a word.
func maskWords(mask []bool, chunkBits int) []uint64 {
	window := chunkBits
	for window%64 != 0 {
		window += chunkBits
	}
	words := make([]uint64, window/64)
	for p := 0; p < window; p++ {
		if mask[p%chunkBits] {
			words[p/64] |= 1 << uint(p%64)
		}
	}
	return words
}
