// Package patterns provides the data patterns used by system-level
// DRAM testing: the simple discovery patterns that locate an initial
// victim sample, per-bit random patterns (the baseline the paper
// compares against), and the neighbor-location-aware patterns of
// Section 5.2.5 that stress every cell with the worst-case pattern in
// a small number of rounds.
package patterns

import "parbor/internal/rng"

// Fill writes one row's worth of pattern data into buf. Fills must be
// deterministic in (chip, bank, row): the test host regenerates the
// pattern during its compare phase.
type Fill func(chip, bank, row int, buf []uint64)

// Pattern is a named row-fill.
type Pattern struct {
	Name string
	Fill Fill
	// Uniform marks fills that ignore (chip, bank, row): every row of
	// the module receives identical data, so one materialized row can
	// back the whole pass (see Arena). The generators in this package
	// set it; custom patterns may too, provided the fill really is
	// row-independent.
	Uniform bool
}

// Inverse returns the bit-complemented pattern. Testing every pattern
// together with its inverse covers both true- and anti-cell rows
// (paper, footnote 3).
func (p Pattern) Inverse() Pattern {
	return Pattern{
		Name: p.Name + "~",
		Fill: func(chip, bank, row int, buf []uint64) {
			p.Fill(chip, bank, row, buf)
			for i := range buf {
				buf[i] = ^buf[i]
			}
		},
		Uniform: p.Uniform,
	}
}

// Arena memoizes materialized rows of uniform patterns so that
// full-module passes can alias one immutable backing slice per
// pattern (see memctl.Host.FullPassRows) instead of regenerating
// O(rows × words) of identical data on every pass.
//
// Rows are keyed by Pattern.Name, so an arena must only ever see
// pattern sets whose names identify their data uniquely. That holds
// for this package's fixed generators (solid, the stripes, and their
// inverses), but NeighborAware reuses names across distance sets —
// use a fresh arena per generated pattern set.
//
// Arena is not safe for concurrent use: materialize before starting a
// pass and hand the returned slice to the host.
type Arena struct {
	words int
	rows  map[string][]uint64
}

// NewArena returns an arena producing rows of words 64-bit words.
func NewArena(words int) *Arena {
	return &Arena{words: words, rows: make(map[string][]uint64)}
}

// Materialize returns the memoized row of a uniform pattern, filling
// it on first use. The returned slice is shared: every later
// Materialize of the same name aliases it, and the test host reads it
// during both halves of a pass, so callers must never write to it.
// It panics on a non-uniform pattern, whose data cannot be
// represented by a single row.
func (a *Arena) Materialize(p Pattern) []uint64 {
	if !p.Uniform {
		panic("patterns: Materialize on non-uniform pattern " + p.Name)
	}
	if row, ok := a.rows[p.Name]; ok {
		return row
	}
	row := make([]uint64, a.words)
	p.Fill(0, 0, 0, row)
	a.rows[p.Name] = row
	return row
}

// solid returns the all-zeros pattern.
func solid() Pattern {
	return Pattern{
		Name: "solid",
		Fill: func(_, _, _ int, buf []uint64) {
			for i := range buf {
				buf[i] = 0
			}
		},
		Uniform: true,
	}
}

// stripe returns a pattern of alternating runs of `width` zero bits
// and `width` one bits. width must divide 64 or be a multiple of 64.
func stripe(name string, width int) Pattern {
	var word func(bitBase int) uint64
	if width >= 64 {
		word = func(bitBase int) uint64 {
			if (bitBase/width)%2 == 1 {
				return ^uint64(0)
			}
			return 0
		}
	} else {
		// Precompute the repeating 64-bit unit.
		var unit uint64
		for b := 0; b < 64; b++ {
			if (b/width)%2 == 1 {
				unit |= 1 << uint(b)
			}
		}
		word = func(int) uint64 { return unit }
	}
	return Pattern{
		Name: name,
		Fill: func(_, _, _ int, buf []uint64) {
			for i := range buf {
				buf[i] = word(i * 64)
			}
		},
		Uniform: true,
	}
}

// DiscoveryPatterns returns the five base patterns (each to be paired
// with its inverse, for the paper's 10 initial tests) used to locate
// the initial victim sample (Section 5.2.1). The stripe widths are
// chosen so that, together, the patterns place opposite data at every
// distance d = 2^k * odd with 2^k in {1, 8, 16, 32, 64} — checker
// covers all odd distances, each wider stripe the corresponding
// power-of-two multiples. (A solid pattern is deliberately absent: it
// creates no opposite-value pairs at any distance, so it can only
// reveal content-independent cells, which the discovery filter
// removes anyway because they fail under every pattern.)
func DiscoveryPatterns() []Pattern {
	return []Pattern{
		stripe("checker", 1),
		stripe("stripe8", 8),
		stripe("stripe16", 16),
		stripe("stripe32", 32),
		stripe("stripe64", 64),
	}
}

// Solid returns the all-zeros pattern (with its inverse: all-ones),
// the naive pattern pair prior works assume suffices (Section 3).
func Solid() Pattern { return solid() }

// Random returns a per-bit random pattern. Distinct passes use
// distinct streams; the fill is deterministic per (pass, chip, bank,
// row) so the host can regenerate it.
func Random(seed uint64, pass int) Pattern {
	return Pattern{
		Name: "random",
		Fill: func(chip, bank, row int, buf []uint64) {
			src := rng.New(seed).
				SplitN("random-pass", uint64(pass)).
				SplitN("chip", uint64(chip)).
				SplitN("row", uint64(bank)<<32|uint64(row))
			for i := range buf {
				buf[i] = src.Uint64()
			}
		},
	}
}

// FromChunkMask returns a pattern that replicates a chunk-sized
// charge mask across the row. mask holds chunkBits bits in
// chunkBits/64 words.
func FromChunkMask(name string, mask []uint64) Pattern {
	m := append([]uint64(nil), mask...)
	return Pattern{
		Name: name,
		Fill: func(_, _, _ int, buf []uint64) {
			for i := range buf {
				buf[i] = m[i%len(m)]
			}
		},
		Uniform: true,
	}
}
