package patterns

import (
	"testing"
	"testing/quick"
)

func fillBuf(p Pattern, words int) []uint64 {
	buf := make([]uint64, words)
	p.Fill(0, 0, 0, buf)
	return buf
}

func bitOf(buf []uint64, i int) uint64 { return (buf[i/64] >> uint(i%64)) & 1 }

func TestDiscoveryPatternCount(t *testing.T) {
	ps := DiscoveryPatterns()
	if len(ps) != 5 {
		t.Fatalf("DiscoveryPatterns() returned %d patterns, want 5 (10 tests with inverses)", len(ps))
	}
}

func TestSolidAndInverse(t *testing.T) {
	ps := []Pattern{Solid()}
	buf := fillBuf(ps[0], 4)
	for i, w := range buf {
		if w != 0 {
			t.Errorf("solid word %d = %x, want 0", i, w)
		}
	}
	inv := fillBuf(ps[0].Inverse(), 4)
	for i, w := range inv {
		if w != ^uint64(0) {
			t.Errorf("solid~ word %d = %x, want all ones", i, w)
		}
	}
}

func TestCheckerAlternates(t *testing.T) {
	buf := fillBuf(stripe("checker", 1), 2)
	for i := 0; i < 127; i++ {
		if bitOf(buf, i) == bitOf(buf, i+1) {
			t.Fatalf("checker bits %d and %d equal", i, i+1)
		}
	}
}

func TestStripeWidths(t *testing.T) {
	for _, width := range []int{8, 16, 32, 64} {
		p := stripe("s", width)
		buf := fillBuf(p, 4)
		for i := 0; i < 256; i++ {
			want := uint64((i / width) % 2)
			if got := bitOf(buf, i); got != want {
				t.Fatalf("width %d: bit %d = %d, want %d", width, i, got, want)
			}
		}
	}
}

// TestStripesSeparateVendorDistances checks the design intent of the
// discovery set: for every distance of every vendor profile, at least
// one discovery pattern places opposite values at that distance.
func TestStripesSeparateVendorDistances(t *testing.T) {
	ps := DiscoveryPatterns()
	for _, d := range []int{1, 5, 8, 16, 32, 33, 40, 48, 49, 64, 96} {
		found := false
		for _, p := range ps {
			buf := fillBuf(p, 4)
			for o := 0; o+d < 256; o++ {
				if bitOf(buf, o) != bitOf(buf, o+d) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("no discovery pattern separates distance %d", d)
		}
	}
}

func TestRandomDeterministicPerPass(t *testing.T) {
	a := fillBuf(Random(1, 3), 8)
	b := fillBuf(Random(1, 3), 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random pattern not deterministic")
		}
	}
	c := fillBuf(Random(1, 4), 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different passes produced identical random data")
	}
}

func TestRandomVariesByRow(t *testing.T) {
	p := Random(1, 0)
	a := make([]uint64, 4)
	b := make([]uint64, 4)
	p.Fill(0, 0, 0, a)
	p.Fill(0, 0, 1, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different rows produced identical random data")
	}
}

func TestNeighborAwareRoundCounts(t *testing.T) {
	tests := []struct {
		name      string
		distances []int
		chunk     int
		want      int
	}{
		{name: "vendor A", distances: []int{-48, -16, -8, 8, 16, 48}, chunk: 128, want: 16},
		{name: "vendor B", distances: []int{-64, -1, 1, 64}, chunk: 128, want: 16},
		{name: "vendor C", distances: []int{-49, -33, -16, 16, 33, 49}, chunk: 128, want: 16},
		{name: "toy", distances: []int{-5, -1, 1, 5}, chunk: 16, want: 16},
		{name: "linear", distances: []int{-1, 1}, chunk: 128, want: 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ps, err := NeighborAware(tt.distances, tt.chunk)
			if err != nil {
				t.Fatalf("NeighborAware: %v", err)
			}
			if len(ps) != tt.want {
				t.Errorf("rounds = %d, want %d", len(ps), tt.want)
			}
		})
	}
}

// TestNeighborAwareCoverage re-verifies the covering property from
// the outside: for every offset there must be a round charging it
// while discharging all candidate neighbors.
func TestNeighborAwareCoverage(t *testing.T) {
	cases := [][]int{
		{8, 16, 48},
		{1, 64},
		{16, 33, 49},
		{1},
		{3, 7, 11}, // odd custom set, exercises the fallback path
	}
	const chunk = 128
	for _, dists := range cases {
		ps, err := NeighborAware(dists, chunk)
		if err != nil {
			t.Fatalf("NeighborAware(%v): %v", dists, err)
		}
		bufs := make([][]uint64, len(ps))
		for i, p := range ps {
			bufs[i] = fillBuf(p, chunk/64)
		}
		for o := 0; o < chunk; o++ {
			covered := false
			for _, buf := range bufs {
				if bitOf(buf, o) == 0 {
					continue
				}
				ok := true
				for _, d := range dists {
					if o+d < chunk && bitOf(buf, o+d) == 1 {
						ok = false
					}
					if o-d >= 0 && bitOf(buf, o-d) == 1 {
						ok = false
					}
				}
				if ok {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("distances %v: offset %d never covered", dists, o)
			}
		}
	}
}

func TestNeighborAwareCompact(t *testing.T) {
	// Vendor C's distance set admits the paper's 8-round class scheme.
	ps, err := NeighborAwareCompact([]int{-49, -33, -16, 16, 33, 49}, 128)
	if err != nil {
		t.Fatalf("NeighborAwareCompact: %v", err)
	}
	if len(ps) != 8 {
		t.Errorf("compact rounds = %d, want 8 (paper, Section 7.2)", len(ps))
	}
	// Coverage of the immediate neighbors must still hold.
	bufs := make([][]uint64, len(ps))
	for i, p := range ps {
		bufs[i] = fillBuf(p, 2)
	}
	dists := []int{16, 33, 49}
	for o := 0; o < 128; o++ {
		covered := false
		for _, buf := range bufs {
			if bitOf(buf, o) == 0 {
				continue
			}
			ok := true
			for _, d := range dists {
				if o+d < 128 && bitOf(buf, o+d) == 1 {
					ok = false
				}
				if o-d >= 0 && bitOf(buf, o-d) == 1 {
					ok = false
				}
			}
			if ok {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("compact: offset %d never covered", o)
		}
	}
	// Vendor B's set (distance 1 < 8) cannot use the class scheme and
	// must fall back to the safe generator.
	ps, err = NeighborAwareCompact([]int{-64, -1, 1, 64}, 128)
	if err != nil {
		t.Fatalf("NeighborAwareCompact(B): %v", err)
	}
	if len(ps) != 16 {
		t.Errorf("compact B rounds = %d, want 16 (fallback)", len(ps))
	}
	// A distance that is an exact multiple of 64 collides with the
	// class scheme and must also fall back.
	ps, err = NeighborAwareCompact([]int{64, 16}, 128)
	if err != nil {
		t.Fatalf("NeighborAwareCompact(64): %v", err)
	}
	if len(ps) != 16 {
		t.Errorf("compact {64,16} rounds = %d, want 16 (fallback)", len(ps))
	}
}

func TestNeighborAwareErrors(t *testing.T) {
	if _, err := NeighborAware(nil, 128); err == nil {
		t.Error("empty distances accepted")
	}
	if _, err := NeighborAware([]int{1}, 0); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := NeighborAware([]int{200}, 128); err == nil {
		t.Error("distance beyond chunk accepted")
	}
}

// TestInverseIsInvolution: applying Inverse twice restores the
// original pattern for arbitrary rows.
func TestInverseIsInvolution(t *testing.T) {
	p := Random(2, 1)
	pp := p.Inverse().Inverse()
	f := func(row uint16) bool {
		a := make([]uint64, 4)
		b := make([]uint64, 4)
		p.Fill(0, 0, int(row), a)
		pp.Fill(0, 0, int(row), b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromChunkMaskReplication(t *testing.T) {
	mask := []uint64{0x00000000000000ff, 0xff00000000000000}
	p := FromChunkMask("m", mask)
	buf := fillBuf(p, 6)
	for i, w := range buf {
		if w != mask[i%2] {
			t.Errorf("word %d = %x, want %x", i, w, mask[i%2])
		}
	}
}
