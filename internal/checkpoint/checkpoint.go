// Package checkpoint serializes an online-test sweep so it can be
// interrupted and resumed bit-identically — the property PARBOR's
// deployment setting needs, because VRT-aware sweeps run for hours
// (Section 5.2.1) and a field system cannot promise an uninterrupted
// machine for that long.
//
// A snapshot captures exactly the state that diverges between a
// fresh module and one mid-sweep:
//
//   - The scheduler's progress (onlinetest.State): cursor, rounds,
//     failure sets, quarantine list, resilience totals.
//   - Each chip's simulation clock (virtual time and pass counter),
//     which seeds every future stochastic draw.
//
// Row contents are deliberately NOT captured: a completed epoch
// restores the live data it saved, so between epochs the array holds
// exactly what the application wrote — which, for a module rebuilt
// from its seed, is the initial contents. Restoring the clocks onto a
// freshly constructed module (same config, same seed) therefore
// reproduces the mid-sweep module state exactly, and the resumed
// sweep's remaining epochs produce bit-identical failures to the
// uninterrupted run. The host's fault-plane attempt counter is
// captured too (HostAttempts): a chaos plane keys every injected
// fault on it, so restoring it extends the bit-identity guarantee to
// runs with a fault plane attached — the resumed host replays the
// exact fault schedule the uninterrupted run would have drawn.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"

	"parbor/internal/dram"
	"parbor/internal/faultfs"
	"parbor/internal/onlinetest"
)

// Schema identifies the snapshot layout. Bump on incompatible
// changes; readers reject schemas they do not know.
const Schema = "parbor/checkpoint/v1"

// Clock is one chip's simulation clock.
type Clock struct {
	NowMs float64 `json:"now_ms"`
	Pass  uint64  `json:"pass"`
}

// ModuleIdent pins the module a snapshot belongs to. Resume refuses a
// module whose identity does not match: clocks applied to a different
// geometry or seed would silently produce garbage.
type ModuleIdent struct {
	Name   string `json:"name"`
	Vendor string `json:"vendor"`
	Chips  int    `json:"chips"`
	Banks  int    `json:"banks"`
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
}

// Snapshot is the parbor/checkpoint/v1 on-disk format.
type Snapshot struct {
	Schema string      `json:"schema"`
	Module ModuleIdent `json:"module"`
	// Seed is the module's process-variation seed, recorded so a
	// resuming process can rebuild the identical module without
	// trusting its command line. (The module itself does not retain
	// it, so the captor provides it.)
	Seed      uint64           `json:"seed"`
	Scheduler onlinetest.State `json:"scheduler"`
	Clocks    []Clock          `json:"clocks"`
	// HostAttempts is the memctl.Host attempt counter at capture time
	// — the entropy an attached fault plane keys its draws on. Zero in
	// snapshots from hosts without a plane (the counter still advances
	// there, but nothing observes it, so restoring zero is harmless
	// for old snapshots). Captors record it with host.Attempts();
	// resumers restore it with host.SetAttempts before the first pass.
	HostAttempts int `json:"host_attempts,omitempty"`
}

// ident distills a module's identity.
func ident(mod *dram.Module) ModuleIdent {
	g := mod.Geometry()
	return ModuleIdent{
		Name:   mod.Name(),
		Vendor: mod.Vendor().String(),
		Chips:  mod.Chips(),
		Banks:  g.Banks,
		Rows:   g.Rows,
		Cols:   g.Cols,
	}
}

// Capture snapshots a mid-sweep run: the scheduler's exported state
// plus the module's per-chip clocks. seed is the module's
// construction seed. Call it between epochs (never mid-epoch —
// RunEpoch holds saved live data that a snapshot does not cover).
func Capture(mod *dram.Module, seed uint64, st onlinetest.State) *Snapshot {
	snap := &Snapshot{Schema: Schema, Module: ident(mod), Seed: seed, Scheduler: st}
	for i := 0; i < mod.Chips(); i++ {
		now, pass := mod.Chip(i).Clock()
		snap.Clocks = append(snap.Clocks, Clock{NowMs: now, Pass: pass})
	}
	return snap
}

// Validate checks the snapshot against the module it is about to be
// applied to.
func (s *Snapshot) Validate(mod *dram.Module) error {
	if s.Schema != Schema {
		return fmt.Errorf("checkpoint: unknown schema %q", s.Schema)
	}
	if got := ident(mod); got != s.Module {
		return fmt.Errorf("checkpoint: snapshot is of module %+v, not %+v", s.Module, got)
	}
	if len(s.Clocks) != mod.Chips() {
		return fmt.Errorf("checkpoint: %d clocks for %d chips", len(s.Clocks), mod.Chips())
	}
	if s.HostAttempts < 0 {
		return fmt.Errorf("checkpoint: negative host attempt counter %d", s.HostAttempts)
	}
	for i, c := range s.Clocks {
		if c.NowMs < 0 {
			return fmt.Errorf("checkpoint: chip %d: negative clock %v", i, c.NowMs)
		}
	}
	return nil
}

// Apply restores the snapshot's clocks onto a freshly constructed
// module (same config and seed as the captured one). After Apply the
// module is in the captured mid-sweep state; rebuild the scheduler
// with onlinetest.Resume.
func (s *Snapshot) Apply(mod *dram.Module) error {
	if err := s.Validate(mod); err != nil {
		return err
	}
	for i, c := range s.Clocks {
		mod.Chip(i).SetClock(c.NowMs, c.Pass)
	}
	return nil
}

// Marshal serializes the snapshot as indented JSON with a trailing
// newline — the exact bytes WriteFile persists. The in-memory form
// exists for services that hold thousands of live snapshots (package
// fleet streams them over HTTP) without touching the filesystem.
func (s *Snapshot) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshaling snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// Unmarshal parses a snapshot serialized by Marshal, rejecting
// unknown schemas.
func Unmarshal(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: parsing snapshot: %w", err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("checkpoint: unknown schema %q", s.Schema)
	}
	return &s, nil
}

// WriteFile serializes the snapshot as indented JSON to path,
// atomically: a crash at any point leaves either the previous
// snapshot or the complete new one, never a torn hybrid — a resumer
// must never be handed half a checkpoint.
func (s *Snapshot) WriteFile(path string) error {
	return s.WriteFileFS(faultfs.OS{}, path)
}

// WriteFileFS is WriteFile through an explicit filesystem seam.
func (s *Snapshot) WriteFileFS(fsys faultfs.FS, path string) error {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	if err := faultfs.WriteFileAtomic(fsys, path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: writing snapshot: %w", err)
	}
	return nil
}

// ReadFile loads a snapshot written by WriteFile.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading snapshot: %w", err)
	}
	return Unmarshal(data)
}
