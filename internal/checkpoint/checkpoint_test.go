package checkpoint

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parbor/internal/chaos"
	"parbor/internal/coupling"
	"parbor/internal/dram"
	"parbor/internal/faults"
	"parbor/internal/memctl"
	"parbor/internal/onlinetest"
	"parbor/internal/scramble"
)

var distances = []int{-48, -16, -8, 8, 16, 48}

// newModule builds the module under test. The default faults config is
// deliberately ON: VRT and marginal cells draw from the per-chip clock
// and pass counter, which is exactly the state a checkpoint must carry
// for resume to be bit-identical.
func newModule(t *testing.T, seed uint64) *dram.Module {
	t.Helper()
	mod, err := dram.NewModule(dram.ModuleConfig{
		Name:   "ckpt-test",
		Vendor: scramble.VendorA,
		Chips:  2,
		Geometry: dram.Geometry{
			Banks: 1, Rows: 16, Cols: 8192,
		},
		Coupling: coupling.Config{
			VulnerableRate:  2e-3,
			StrongLeftFrac:  0.3,
			StrongRightFrac: 0.3,
			RetentionMinMs:  100,
			RetentionMaxMs:  100,
		},
		Faults: faults.DefaultConfig(),
		Seed:   seed,
	})
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return mod
}

func newSched(t *testing.T, mod *dram.Module) *onlinetest.Scheduler {
	t.Helper()
	host, err := memctl.NewHost(mod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	s, err := onlinetest.New(host, onlinetest.Config{Distances: distances, RowsPerEpoch: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func epochs(t *testing.T, s *onlinetest.Scheduler, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.RunEpochCtx(context.Background()); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
	}
}

// TestInterruptResumeBitIdentical is the acceptance property: a sweep
// interrupted at the halfway point and resumed from its snapshot (on a
// freshly built process image) must report exactly the failures of an
// uninterrupted sweep — with the default noise models on, so the
// clocks in the snapshot are actually load-bearing.
func TestInterruptResumeBitIdentical(t *testing.T) {
	const seed = 17
	const total = 8

	straight := newSched(t, newModule(t, seed))
	epochs(t, straight, total)

	// Interrupted process: half the epochs, then snapshot to disk.
	firstMod := newModule(t, seed)
	first := newSched(t, firstMod)
	epochs(t, first, total/2)
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := Capture(firstMod, seed, first.State()).WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	// Resuming process: fresh module from config+seed, clocks applied,
	// scheduler rebuilt from state.
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	resumedMod := newModule(t, snap.Seed)
	if err := snap.Apply(resumedMod); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	host, err := memctl.NewHost(resumedMod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	resumed, err := onlinetest.Resume(host, snap.Scheduler)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	epochs(t, resumed, total/2)

	if got, want := resumed.Failures(), straight.Failures(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed sweep found %d failures, uninterrupted %d — checkpoint is lossy", len(got), len(want))
	}
	if resumed.Tests() != straight.Tests() || resumed.Coverage() != straight.Coverage() {
		t.Errorf("resumed progress %d tests / %.2f coverage, uninterrupted %d / %.2f",
			resumed.Tests(), resumed.Coverage(), straight.Tests(), straight.Coverage())
	}
	if len(straight.Failures()) == 0 {
		t.Fatal("no failures at all; the bit-identity comparison is vacuous")
	}
}

// TestInterruptResumeBitIdenticalVRTHot extends the bit-identity
// property to a config where VRT toggles dominate the failure set.
// This is the regression test for the VRT resume drift: toggle draws
// used to come from one sequential per-pass stream over the currently
// materialized VRT rows, so the resumed process — whose meta cache is
// empty, materializing only the rows its remaining epochs touch — saw
// a different draw order than the uninterrupted run and diverged.
// Keyed per-(pass, row, cell) draws make the materialization history
// invisible. The snapshot travels through the in-memory
// Marshal/Unmarshal round-trip rather than a file.
func TestInterruptResumeBitIdenticalVRTHot(t *testing.T) {
	const seed = 23
	const total = 8
	vrtModule := func(t *testing.T, seed uint64) *dram.Module {
		t.Helper()
		mod, err := dram.NewModule(dram.ModuleConfig{
			Name:     "ckpt-vrt",
			Vendor:   scramble.VendorA,
			Chips:    2,
			Geometry: dram.Geometry{Banks: 1, Rows: 16, Cols: 8192},
			Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
			Faults:   faults.Config{VRTRate: 2e-3, VRTToggleProb: 0.5},
			Seed:     seed,
		})
		if err != nil {
			t.Fatalf("NewModule: %v", err)
		}
		return mod
	}

	straight := newSched(t, vrtModule(t, seed))
	epochs(t, straight, total)

	firstMod := vrtModule(t, seed)
	first := newSched(t, firstMod)
	epochs(t, first, total/2)
	data, err := Capture(firstMod, seed, first.State()).Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	snap, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	resumedMod := vrtModule(t, snap.Seed)
	if err := snap.Apply(resumedMod); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	host, err := memctl.NewHost(resumedMod, 0)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	resumed, err := onlinetest.Resume(host, snap.Scheduler)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	epochs(t, resumed, total/2)

	if got, want := resumed.Failures(), straight.Failures(); !reflect.DeepEqual(got, want) {
		t.Errorf("VRT-hot resumed sweep found %d failures, uninterrupted %d — VRT draws depend on materialization history", len(got), len(want))
	}
	if resumed.Epochs() != straight.Epochs() {
		t.Errorf("resumed epoch count %d, uninterrupted %d", resumed.Epochs(), straight.Epochs())
	}
	if len(straight.Failures()) == 0 {
		t.Fatal("no VRT failures at all; the comparison is vacuous")
	}
}

// TestInterruptResumeWithChaosPlane: with HostAttempts captured and
// restored, the bit-identity guarantee extends to runs with a fault
// plane attached — the resumed host continues the attempt counter the
// plane keys its draws on, so it replays the uninterrupted run's
// exact fault schedule.
func TestInterruptResumeWithChaosPlane(t *testing.T) {
	const seed = 17
	const total = 8
	planeCfg := chaos.Config{Seed: 11, WriteFaultProb: 0.004, ReadFaultProb: 0.004}
	mk := func(t *testing.T, mod *dram.Module) (*memctl.Host, *onlinetest.Scheduler) {
		t.Helper()
		plane, err := chaos.New(planeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		host, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{Faults: plane})
		if err != nil {
			t.Fatalf("NewHost: %v", err)
		}
		s, err := onlinetest.New(host, onlinetest.Config{Distances: distances, RowsPerEpoch: 8, MaxRetries: 8})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return host, s
	}

	_, straight := mk(t, newModule(t, seed))
	epochs(t, straight, total)

	firstMod := newModule(t, seed)
	firstHost, first := mk(t, firstMod)
	epochs(t, first, total/2)
	snap := Capture(firstMod, seed, first.State())
	snap.HostAttempts = firstHost.Attempts()
	data, err := snap.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	snap, err = Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	resumedMod := newModule(t, snap.Seed)
	if err := snap.Apply(resumedMod); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	resumedHost, _ := mk(t, resumedMod)
	if err := resumedHost.SetAttempts(snap.HostAttempts); err != nil {
		t.Fatalf("SetAttempts: %v", err)
	}
	resumed, err := onlinetest.Resume(resumedHost, snap.Scheduler)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	epochs(t, resumed, total/2)

	if straight.Retries() == 0 {
		t.Fatal("plane injected no transient faults; the attempt-counter comparison is vacuous")
	}
	if resumed.Retries() != straight.Retries() {
		t.Errorf("resumed run consumed %d retries, uninterrupted %d — fault schedules differ", resumed.Retries(), straight.Retries())
	}
	if got, want := resumed.Failures(), straight.Failures(); !reflect.DeepEqual(got, want) {
		t.Errorf("chaos resumed sweep found %d failures, uninterrupted %d", len(got), len(want))
	}
	if len(straight.Failures()) == 0 {
		t.Fatal("no failures at all; the comparison is vacuous")
	}
}

func TestSnapshotValidation(t *testing.T) {
	mod := newModule(t, 5)
	s := newSched(t, mod)
	epochs(t, s, 1)
	snap := Capture(mod, 5, s.State())

	if err := snap.Validate(mod); err != nil {
		t.Fatalf("snapshot of mod does not validate against mod: %v", err)
	}

	wrongSchema := *snap
	wrongSchema.Schema = "parbor/checkpoint/v0"
	if err := wrongSchema.Validate(mod); err == nil {
		t.Error("wrong schema accepted")
	}

	otherMod := newModule(t, 6) // same geometry, same name — ident matches
	if err := snap.Validate(otherMod); err != nil {
		t.Errorf("same-ident module rejected: %v", err)
	}

	short := *snap
	short.Clocks = snap.Clocks[:1]
	if err := short.Validate(mod); err == nil {
		t.Error("truncated clock list accepted")
	}

	negative := *snap
	negative.Clocks = append([]Clock(nil), snap.Clocks...)
	negative.Clocks[0].NowMs = -1
	if err := negative.Validate(mod); err == nil {
		t.Error("negative clock accepted")
	}

	negAttempts := *snap
	negAttempts.HostAttempts = -1
	if err := negAttempts.Validate(mod); err == nil {
		t.Error("negative host attempt counter accepted")
	}

	smaller, err := dram.NewModule(dram.ModuleConfig{
		Name:     "ckpt-test",
		Vendor:   scramble.VendorA,
		Chips:    2,
		Geometry: dram.Geometry{Banks: 1, Rows: 8, Cols: 8192},
		Coupling: coupling.Config{VulnerableRate: 0, RetentionMinMs: 1, RetentionMaxMs: 1},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(smaller); err == nil {
		t.Error("module with different geometry accepted")
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeString(bad, "not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("unparsable file accepted")
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := writeString(wrong, `{"schema":"parbor/other/v9"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(wrong); err == nil {
		t.Error("wrong schema accepted")
	}
}

func writeString(path, s string) error {
	return os.WriteFile(path, []byte(s), 0o644)
}
