// Dcref-demo shows the paper's new use case (Section 8): refresh
// reduction driven by data content. It simulates one 8-core workload
// under the three refresh policies and explains where DC-REF's
// advantage comes from.
//
//	go run ./examples/dcref-demo
package main

import (
	"fmt"
	"log"

	"parbor"
)

func main() {
	// One 8-core mix drawn from the SPEC-like profiles.
	workload := parbor.Workloads(1, 8, 11)[0]
	fmt.Println("Workload mix:")
	for core, app := range workload {
		fmt.Printf("  core %d: %-12s (MPKI %.1f, content-match prob %.2f)\n",
			core, app.Name, app.MPKI, app.ContentMatchProb)
	}
	fmt.Println()

	type outcome struct {
		name      string
		ipc       float64
		refreshes int64
		fastFrac  float64
	}
	var outs []outcome
	for _, policy := range parbor.RefreshKinds() {
		res, err := parbor.RunSim(parbor.SimConfig{
			Workload: workload,
			Policy:   policy,
			Density:  parbor.Density32Gbit,
			SimNs:    2e6,
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		for _, ipc := range res.IPC {
			sum += ipc
		}
		outs = append(outs, outcome{
			name:      policy.String(),
			ipc:       sum,
			refreshes: res.Refreshes,
			fastFrac:  res.FastRowFrac,
		})
	}

	fmt.Printf("%-16s%12s%12s%16s\n", "Policy", "Sum IPC", "Refreshes", "Fast rows")
	for _, o := range outs {
		fmt.Printf("%-16s%12.3f%12d%15.1f%%\n", o.name, o.ipc, o.refreshes, 100*o.fastFrac)
	}

	base, raidr, dcref := outs[0], outs[1], outs[2]
	fmt.Printf("\nDC-REF vs baseline: %+.1f%% performance, %.0f%% fewer refreshes\n",
		100*(dcref.ipc/base.ipc-1), 100*(1-float64(dcref.refreshes)/float64(base.refreshes)))
	fmt.Printf("DC-REF vs RAIDR:    %+.1f%% performance, %.0f%% fewer refreshes\n",
		100*(dcref.ipc/raidr.ipc-1), 100*(1-float64(dcref.refreshes)/float64(raidr.refreshes)))
	fmt.Println("\nWhy: RAIDR must fast-refresh every row containing a weak cell")
	fmt.Println("(16.4% of rows), forever. DC-REF checks, on each write, whether")
	fmt.Println("the new content actually recreates the worst-case coupling")
	fmt.Println("pattern PARBOR identified — and only such rows (a few percent)")
	fmt.Println("stay on the fast 64 ms interval.")
}
