// Online-monitor demonstrates in-field testing, the deployment
// setting the paper targets: a live system whose DRAM holds real data
// keeps testing itself for data-dependent failures, a few rows per
// epoch, without corrupting a single application bit.
//
//	go run ./examples/online-monitor
package main

import (
	"fmt"
	"log"

	"parbor"
)

const rows = 64

func main() {
	coupling := parbor.DefaultCouplingConfig()
	coupling.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "A1",
		Vendor:   parbor.VendorA,
		Chips:    1,
		Geometry: parbor.Geometry{Banks: 1, Rows: rows, Cols: 8192},
		Coupling: coupling,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     23,
	})
	if err != nil {
		log.Fatal(err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The "application" fills memory with data it cares about.
	appData := fillApplicationData(host)
	fmt.Printf("Application resident: %d rows of live data\n\n", rows)

	// One-time setup: learn the neighbor locations (in the field this
	// runs once per module qualification).
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	nr, err := tester.DetectNeighbors()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Detected neighbor distances: %v (%d tests)\n\n", nr.Distances, nr.TotalTests())

	// Note: detection overwrote memory; the application reloads. In a
	// real deployment detection itself would also migrate data.
	appData = fillApplicationData(host)

	// Steady state: a few rows per epoch, forever.
	sched, err := parbor.NewOnlineScheduler(host, parbor.OnlineConfig{
		Distances:    nr.Distances,
		RowsPerEpoch: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Online monitoring, 8 rows per epoch:")
	for epoch := 1; sched.Rounds() == 0; epoch++ {
		res, err := sched.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  epoch %d: %2d rows out of service, %2d tests, %3d new failures, coverage %3.0f%%\n",
			epoch, len(res.RowsTested), res.Tests, len(res.NewFailures), 100*sched.Coverage())
	}
	fmt.Printf("\nFull sweep complete: %d data-dependent failures on record (%d tests total)\n",
		len(sched.Failures()), sched.Tests())

	// Prove no application data was harmed.
	if err := verifyApplicationData(host, appData); err != nil {
		log.Fatalf("DATA CORRUPTION: %v", err)
	}
	fmt.Println("Application data verified bit-for-bit intact.")
}

func fillApplicationData(host *parbor.Host) [][]uint64 {
	words := host.Geometry().Words()
	data := make([][]uint64, rows)
	list := make([]parbor.Row, rows)
	for r := 0; r < rows; r++ {
		data[r] = make([]uint64, words)
		for w := range data[r] {
			data[r][w] = uint64(r)<<32 | uint64(w)*0x9e3779b9
		}
		list[r] = parbor.Row{Chip: 0, Bank: 0, Row: r}
	}
	if _, err := host.PassWithWait(list, data, 0); err != nil {
		log.Fatal(err)
	}
	return data
}

func verifyApplicationData(host *parbor.Host, want [][]uint64) error {
	got := make([]uint64, host.Geometry().Words())
	for r := 0; r < rows; r++ {
		if err := host.ReadRowInto(parbor.Row{Chip: 0, Bank: 0, Row: r}, got); err != nil {
			return err
		}
		for w := range got {
			if got[w] != want[r][w] {
				return fmt.Errorf("row %d word %d: %x != %x", r, w, got[w], want[r][w])
			}
		}
	}
	return nil
}
