// Mitigation-planner demonstrates the downstream use the paper's
// introduction motivates: detection enables cheap mitigation. It runs
// the full pipeline — detect neighbor locations, uncover failures,
// classify victims by coupling class — and then plans spare-resource
// mitigation twice: once treating every failure as hard, and once
// letting a DC-REF-style refresh policy own the coupling-driven ones.
//
//	go run ./examples/mitigation-planner
package main

import (
	"fmt"
	"log"

	"parbor"
)

func main() {
	coupling := parbor.DefaultCouplingConfig()
	coupling.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "C1",
		Vendor:   parbor.VendorC,
		Chips:    2,
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: coupling,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Step 1: detect neighbor locations and failures")
	report, err := tester.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  distances %v, %d failures, %d tests\n\n",
		report.Neighbor.Distances, len(report.AllFailures), report.TotalTests())

	fmt.Println("Step 2: classify the victim sample by coupling class")
	victims, _, _ := tester.DiscoverVictims()
	classified, probes, err := tester.ClassifyVictims(victims, report.Neighbor.Distances)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[parbor.CouplingKind]int{}
	for _, c := range classified {
		counts[c.Kind]++
	}
	fmt.Printf("  %d probe tests: %d strongly coupled, %d weakly coupled, %d content-independent, %d unknown\n\n",
		probes, counts[parbor.KindSingle], counts[parbor.KindPair],
		counts[parbor.KindContentIndependent], counts[parbor.KindUnknown])

	fmt.Println("Step 3: plan mitigation under a fixed spare budget")
	failures := make([]parbor.BitAddr, 0, len(report.AllFailures))
	for a := range report.AllFailures {
		failures = append(failures, a)
	}
	budget := parbor.RepairBudget{SpareRows: 16, ECCBitsPerWord: 1, RemapEntries: 128}

	plain, err := parbor.PlanRepair(failures, budget, parbor.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	informed, err := parbor.PlanRepair(failures, budget, parbor.RepairOptions{
		RefreshManaged: parbor.RefreshManagedSet(classified),
	})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, p *parbor.RepairPlan) {
		fmt.Printf("  %-28s spare rows %2d, ECC-covered %5d, remapped %3d, refresh-managed %4d, uncovered %4d (coverage %.1f%%)\n",
			name, len(p.SparedRows), len(p.ECCCovered), len(p.Remapped),
			len(p.RefreshManaged), len(p.Uncovered), 100*p.CoverageFraction())
	}
	show("all failures hard:", plain)
	show("coupling handled by DC-REF:", informed)
	fmt.Println("\nClassification lets the refresh policy own the coupling victims,")
	fmt.Println("so the spare rows, ECC headroom and remap entries stretch further —")
	fmt.Println("the quantitative version of the paper's 'detection enables better")
	fmt.Println("scaling' argument (Section 1).")
}
