// Vendorscan plays the role of a system integrator qualifying DIMMs
// from unknown manufacturers: for each module it learns the scrambled
// neighbor locations from scratch, checks them against ground truth,
// and reports the test budget — demonstrating the paper's point that
// one technique handles any vendor's mapping (Section 1).
//
//	go run ./examples/vendorscan
package main

import (
	"fmt"
	"log"
	"reflect"

	"parbor"
)

func main() {
	fmt.Println("Scanning modules from three (simulated) vendors")
	fmt.Println("===============================================")
	coupling := parbor.DefaultCouplingConfig()
	coupling.VulnerableRate = 2e-3

	for i, vendor := range parbor.Vendors() {
		mod, err := parbor.NewModule(parbor.ModuleConfig{
			Name:     fmt.Sprintf("%s1", vendor),
			Vendor:   vendor,
			Chips:    2,
			Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
			Coupling: coupling,
			Faults:   parbor.DefaultFaultsConfig(),
			Seed:     100 + uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		host, err := parbor.NewHost(mod, 0)
		if err != nil {
			log.Fatal(err)
		}
		tester, err := parbor.NewTester(host, parbor.DetectConfig{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := tester.DetectNeighbors()
		if err != nil {
			log.Fatalf("module %s: %v", mod.Name(), err)
		}

		// Ground truth is available here because the chips are
		// simulated; a real integrator would not have it — which is
		// the whole point of PARBOR.
		truth, err := parbor.NewMapping(vendor)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MISMATCH"
		if reflect.DeepEqual(res.Distances, truth.Distances()) {
			verdict = "exact match"
		}
		fmt.Printf("\nModule %s:\n", mod.Name())
		fmt.Printf("  detected neighbor distances: %v\n", res.Distances)
		fmt.Printf("  ground-truth mapping:        %v  -> %s\n", truth.Distances(), verdict)
		fmt.Printf("  tests: %d discovery + %d recursion (vs 8192 for a linear scan)\n",
			res.DiscoveryTests, res.RecursionTests)
	}

	fmt.Println("\nA module with no scrambling, for contrast:")
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "Linear1",
		Vendor:   parbor.VendorLinear,
		Chips:    1,
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: coupling,
		Seed:     9,
	})
	if err != nil {
		log.Fatal(err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tester.DetectNeighbors()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detected distances: %v (adjacent system addresses ARE physical neighbors)\n",
		res.Distances)
}
