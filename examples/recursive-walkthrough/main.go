// Recursive-walkthrough reproduces the paper's worked example
// (Figures 5, 8, 9 and 10) on the Toy mapping: a 16-bit scrambling
// chunk in which every cell's physical neighbors live at system
// distances ±1 and ±5. It prints the recursion level by level, the
// way Figure 10 tabulates the union of distances.
//
//	go run ./examples/recursive-walkthrough
package main

import (
	"fmt"
	"log"
	"sort"

	"parbor"
)

func main() {
	// The toy mapping of Figure 5: system bits X..X+7 are buffered
	// through two cell arrays with pair swaps, so the neighbors of X
	// end up at X+1 and X+5.
	mapping, err := parbor.NewMapping(parbor.VendorToy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 5/8 — the toy scrambled mapping")
	fmt.Println("======================================")
	for _, seg := range mapping.Segments() {
		fmt.Printf("  physical array: %v\n", seg)
	}
	l, r, _, _ := mapping.Neighbors(0)
	fmt.Printf("  neighbors of system bit 0: %d and %d (distances %v)\n\n",
		l, r, mapping.Distances())

	// Build a module using this mapping and run the recursion.
	coupling := parbor.DefaultCouplingConfig()
	coupling.VulnerableRate = 5e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:   "Toy1",
		Vendor: parbor.VendorToy,
		Chips:  1,
		// 1024-bit rows: 64 toy chunks per row, so the recursion has
		// four levels (512, 64, 8, 1).
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 1024},
		Coupling: coupling,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tester.DetectNeighbors()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 9/10 — the recursion, level by level")
	fmt.Println("===========================================")
	fmt.Printf("victim sample: %d cells tested in parallel, one per row\n\n", res.SampleSize)
	for i, lvl := range res.Levels {
		fmt.Printf("L%d: region size %4d bits, %2d tests\n", i+1, lvl.RegionSize, lvl.Tests)
		dists := make([]int, 0, len(lvl.Frequencies))
		for d := range lvl.Frequencies {
			dists = append(dists, d)
		}
		sort.Ints(dists)
		for _, d := range dists {
			marker := " "
			if contains(lvl.Distances, d) {
				marker = "*" // survived ranking
			}
			fmt.Printf("   distance %+3d: %4d victims %s\n", d, lvl.Frequencies[d], marker)
		}
	}
	fmt.Printf("\nfinal union of distances: %v (the toy mapping's true ±1, ±5)\n", res.Distances)
	fmt.Printf("total recursion tests: %d — versus %d for the naive per-bit linear\n",
		res.RecursionTests, 1024)
	fmt.Printf("search and %d for the exhaustive pairwise search of one row\n",
		1024*1023/2)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
