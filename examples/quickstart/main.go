// Quickstart: simulate a vendor-A DRAM module, run the full PARBOR
// pipeline, and print what it found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parbor"
)

func main() {
	// A module of 8 simulated chips with vendor A's internal address
	// scrambling and a realistic population of coupling-vulnerable
	// cells. The seed pins the process variation.
	coupling := parbor.DefaultCouplingConfig()
	coupling.VulnerableRate = 2e-3 // denser victims for the scaled-down array

	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "A1",
		Vendor:   parbor.VendorA,
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: coupling,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The host is the system-level test interface: write rows, wait a
	// retention interval, read back, compare. PARBOR sees nothing else.
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := parbor.NewTester(host, parbor.DetectConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Run discovery, recursive neighbor detection, and the full-chip
	// neighbor-aware test.
	report, err := tester.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PARBOR quickstart")
	fmt.Println("=================")
	fmt.Printf("Detected neighbor distances: %v\n", report.Neighbor.Distances)
	fmt.Printf("  (vendor A scrambles so that a cell's physical neighbors sit\n")
	fmt.Printf("   ±8, ±16 or ±48 bit addresses away — not at ±1.)\n\n")
	fmt.Printf("Tests used: %d discovery + %d recursion + %d full-chip = %d total\n",
		report.Neighbor.DiscoveryTests, report.Neighbor.RecursionTests,
		report.FullChipTests, report.TotalTests())
	fmt.Printf("Data-dependent failures uncovered: %d\n\n", len(report.AllFailures))

	// Compare with the naive projections the paper's Appendix makes.
	ttm := parbor.NewTestTimeModel()
	pairwise, err := ttm.NaiveSearch(8192, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A naive pairwise O(n^2) search of one 8K row would take %.0f days;\n",
		pairwise.Hours()/24)
	paperGeom := parbor.Geometry{Banks: 8, Rows: 32768, Cols: 8192}
	fmt.Printf("this whole PARBOR run would take %v on a real 2GB module.\n",
		ttm.ParborTime(paperGeom, 8, report.TotalTests()).Round(1e8))
}
