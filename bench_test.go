// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per experiment) plus ablations of the
// design choices DESIGN.md calls out. Each benchmark runs the
// experiment, asserts its paper-matching shape properties, and
// reports the headline quantity as a custom metric.
//
//	go test -bench=. -benchmem
package parbor_test

import (
	"testing"
	"time"

	"parbor"
	"parbor/internal/exp"
	"parbor/internal/patterns"
	"parbor/internal/sim"
)

// benchOpts keeps the detection benchmarks to a few seconds each.
func benchOpts() exp.Options {
	return exp.Options{RowsPerChip: 256, Chips: 2, ModulesPerVendor: 2, Seed: 42}
}

// BenchmarkTable1TestCounts regenerates Table 1: per-level recursive
// test counts (A 90, B 66, C 90).
func BenchmarkTable1TestCounts(b *testing.B) {
	want := map[string]int{"A": 90, "B": 66, "C": 90}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Total != want[r.Vendor] {
				b.Fatalf("vendor %s: %d tests, paper says %d", r.Vendor, r.Total, want[r.Vendor])
			}
		}
	}
	b.ReportMetric(90, "tests/vendorA")
	b.ReportMetric(66, "tests/vendorB")
}

// BenchmarkFig11Distances regenerates Figure 11: the per-level
// distance sets, ending in each vendor's true neighbor distances.
func BenchmarkFig11Distances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			truth, err := parbor.NewMapping(vendorByName(b, r.Vendor))
			if err != nil {
				b.Fatal(err)
			}
			if !equalInts(r.Final, truth.Distances()) {
				b.Fatalf("vendor %s: distances %v, ground truth %v", r.Vendor, r.Final, truth.Distances())
			}
		}
	}
}

// BenchmarkFig12ExtraFailures regenerates Figure 12: extra failures
// over an equal-budget random test (paper average: +21.9%).
func BenchmarkFig12ExtraFailures(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mean = exp.MeanPctIncrease(rows)
		if mean <= 5 {
			b.Fatalf("mean increase %.1f%%, want clearly positive (paper: 21.9%%)", mean)
		}
		for _, r := range rows {
			if r.NewFailures < 0 {
				b.Fatalf("module %s: PARBOR found nothing new", r.Module)
			}
		}
	}
	b.ReportMetric(mean, "%increase")
}

// BenchmarkFig13Coverage regenerates Figure 13: the only-PARBOR /
// only-random / both split (paper: 20-30% only-PARBOR, <=5%
// only-random).
func BenchmarkFig13Coverage(b *testing.B) {
	var worstOnlyRandom float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worstOnlyRandom = 0
		for _, r := range rows {
			if r.OnlyRandom > worstOnlyRandom {
				worstOnlyRandom = r.OnlyRandom
			}
			if r.OnlyRandom > 10 {
				b.Fatalf("module %s: only-random %.1f%%, want small", r.Module, r.OnlyRandom)
			}
		}
	}
	b.ReportMetric(worstOnlyRandom, "%only-random-max")
}

// BenchmarkFig14Ranking regenerates Figure 14: level-4 distance
// ranking with the true distances clearly frequent.
func BenchmarkFig14Ranking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig14(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			top := 0.0
			for _, e := range r.Entries {
				if e.Frequency > top {
					top = e.Frequency
				}
			}
			if top != 1.0 {
				b.Fatalf("module %s: ranking not normalized (top %.2f)", r.Module, top)
			}
		}
	}
}

// BenchmarkFig15SampleSize regenerates Figure 15: ranking stability
// across victim sample sizes.
func BenchmarkFig15SampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig15(benchOpts(), []int{100, 400})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("%d rows, want 4", len(rows))
		}
	}
}

// BenchmarkFig16DCREF regenerates Figure 16: DC-REF vs RAIDR vs
// baseline (paper: +18% over baseline at 32 Gbit, +3.0% over RAIDR,
// 73% fewer refreshes).
func BenchmarkFig16DCREF(b *testing.B) {
	var s exp.Fig16Summary
	for i := 0; i < b.N; i++ {
		_, summaries, err := exp.Fig16(exp.Fig16Options{
			Workloads: 4,
			Cores:     8,
			SimNs:     1e6,
			Densities: []sim.Density{sim.Density32Gbit},
			Seed:      42,
		})
		if err != nil {
			b.Fatal(err)
		}
		s = summaries[0]
		if s.DCREFvsBase <= 0 || s.DCREFvsRAIDR <= -1 {
			b.Fatalf("DC-REF does not win: vs base %+.1f%%, vs RAIDR %+.1f%%", s.DCREFvsBase, s.DCREFvsRAIDR)
		}
		if s.RefReductionVsBase < 65 || s.RefReductionVsBase > 80 {
			b.Fatalf("refresh reduction %.1f%%, paper says 73%%", s.RefReductionVsBase)
		}
	}
	b.ReportMetric(s.DCREFvsBase, "%perf-vs-base")
	b.ReportMetric(s.RefReductionVsBase, "%fewer-refreshes")
}

// BenchmarkAppendixTestTime regenerates the Appendix's analytic
// test-time projections.
func BenchmarkAppendixTestTime(b *testing.B) {
	m := parbor.NewTestTimeModel()
	var days float64
	for i := 0; i < b.N; i++ {
		d, err := m.NaiveSearch(8192, 2)
		if err != nil {
			b.Fatal(err)
		}
		days = d.Hours() / 24
		if days < 45 || days > 55 {
			b.Fatalf("O(n^2) projection %.1f days, paper says 49", days)
		}
	}
	b.ReportMetric(days, "days-naive-pairwise")
}

// BenchmarkAblationFanout compares the paper's 8-way subdivision with
// binary subdivision: binary needs more levels but not fewer total
// tests — the 8-way split is what keeps the level count at five.
func BenchmarkAblationFanout(b *testing.B) {
	run := func(fanout int) (tests, levels int) {
		host := benchHost(b, parbor.VendorA, 43)
		tester, err := parbor.NewTester(host, parbor.DetectConfig{Fanout: fanout, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tester.DetectNeighbors()
		if err != nil {
			b.Fatal(err)
		}
		return res.RecursionTests, len(res.Levels)
	}
	var t8, t2, l8, l2 int
	for i := 0; i < b.N; i++ {
		t8, l8 = run(8)
		t2, l2 = run(2)
		if l2 <= l8 {
			b.Fatalf("binary split used %d levels, 8-way %d; expected more", l2, l8)
		}
		if t2 < t8 {
			b.Fatalf("binary split used %d tests, 8-way %d; binary's extra levels must not come out cheaper overall", t2, t8)
		}
	}
	b.ReportMetric(float64(t8), "tests/fanout8")
	b.ReportMetric(float64(t2), "tests/fanout2")
}

// BenchmarkAblationRankThreshold sweeps the ranking threshold: too
// low admits noise distances, too high loses true ones.
func BenchmarkAblationRankThreshold(b *testing.B) {
	run := func(th float64) int {
		host := benchHost(b, parbor.VendorA, 44)
		tester, err := parbor.NewTester(host, parbor.DetectConfig{RankThreshold: th, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tester.DetectNeighbors()
		if err != nil {
			return -1
		}
		return len(res.Distances)
	}
	var n10, n90 int
	for i := 0; i < b.N; i++ {
		n10 = run(0.10)
		n90 = run(0.90)
		if n10 != 6 {
			b.Fatalf("threshold 0.10 found %d distances, want vendor A's 6", n10)
		}
		if n90 >= n10 {
			b.Fatalf("threshold 0.90 kept %d distances, expected fewer than %d (overfiltering)", n90, n10)
		}
	}
	b.ReportMetric(float64(n10), "distances/th0.10")
	b.ReportMetric(float64(n90), "distances/th0.90")
}

// BenchmarkAblationParallelRows contrasts PARBOR's parallel-row
// testing with serial single-victim testing: a single victim reveals
// only its own strongly coupled side, so the distance set stays
// incomplete no matter how many tests that victim gets.
func BenchmarkAblationParallelRows(b *testing.B) {
	var parallel, serial int
	for i := 0; i < b.N; i++ {
		host := benchHost(b, parbor.VendorA, 45)
		tester, err := parbor.NewTester(host, parbor.DetectConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tester.DetectNeighbors()
		if err != nil {
			b.Fatal(err)
		}
		parallel = len(res.Distances)

		host = benchHost(b, parbor.VendorA, 45)
		tester, err = parbor.NewTester(host, parbor.DetectConfig{SampleSize: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err = tester.DetectNeighbors()
		if err != nil {
			// A lone victim can dead-end entirely; that is the point.
			serial = 0
			continue
		}
		serial = len(res.Distances)
		if serial >= parallel {
			b.Fatalf("single-victim run found %d distances, parallel %d; expected fewer", serial, parallel)
		}
	}
	b.ReportMetric(float64(parallel), "distances/parallel")
	b.ReportMetric(float64(serial), "distances/serial")
}

// BenchmarkAblationCompactPatterns compares the safe one-hot-group
// full-chip patterns against the paper's compact 8-round scheme for
// vendor C: the compact scheme halves the rounds but misses victims
// that need aggregate tail interference.
func BenchmarkAblationCompactPatterns(b *testing.B) {
	dists := []int{-49, -33, -16, 16, 33, 49}
	var safeRounds, compactRounds int
	for i := 0; i < b.N; i++ {
		safe, err := patterns.NeighborAware(dists, 128)
		if err != nil {
			b.Fatal(err)
		}
		compact, err := patterns.NeighborAwareCompact(dists, 128)
		if err != nil {
			b.Fatal(err)
		}
		safeRounds, compactRounds = len(safe), len(compact)
		if compactRounds >= safeRounds {
			b.Fatalf("compact scheme uses %d rounds vs %d; expected fewer", compactRounds, safeRounds)
		}
	}
	b.ReportMetric(float64(safeRounds), "rounds/safe")
	b.ReportMetric(float64(compactRounds), "rounds/compact")
}

// BenchmarkAblationDCREFColdStart compares primed DC-REF (resident
// data classified at boot) against a conservative cold start in which
// every weak row begins on the fast interval: the cold start behaves
// like RAIDR until writes reclassify rows.
func BenchmarkAblationDCREFColdStart(b *testing.B) {
	run := func(matchProb float64) float64 {
		wl := parbor.Workloads(1, 4, 7)[0]
		for i := range wl {
			wl[i].ContentMatchProb = matchProb
		}
		res, err := parbor.RunSim(parbor.SimConfig{
			Workload: wl,
			Policy:   parbor.RefreshDCREF,
			Density:  parbor.Density32Gbit,
			SimNs:    1e6,
			Seed:     5,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.FastRowFrac
	}
	var primed, cold float64
	for i := 0; i < b.N; i++ {
		primed = run(0.165)
		cold = run(1.0)
		if cold <= primed {
			b.Fatalf("cold start fast-frac %.3f <= primed %.3f; expected more conservative", cold, primed)
		}
	}
	b.ReportMetric(100*primed, "%fast-primed")
	b.ReportMetric(100*cold, "%fast-cold")
}

// BenchmarkObsOverhead guards the cost of the observability layer on
// the detection hot path: a full-module write-wait-read sweep with a
// live Collector attached versus the recorder-free host. The enabled
// path adds two atomic increments per row operation, so the measured
// overhead should stay within the noise floor (the issue budget is
// 2%); the assertion uses a deliberately loose bound so it only trips
// on structural regressions (a lock or allocation sneaking into the
// per-row path), not on scheduler jitter.
func BenchmarkObsOverhead(b *testing.B) {
	build := func(rec parbor.Recorder) *parbor.Host {
		cc := parbor.DefaultCouplingConfig()
		cc.VulnerableRate = 2e-3
		mod, err := parbor.NewModule(parbor.ModuleConfig{
			Name:     "bench-obs",
			Vendor:   parbor.VendorA,
			Chips:    2,
			Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
			Coupling: cc,
			Faults:   parbor.DefaultFaultsConfig(),
			Seed:     42,
			Recorder: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{WaitMs: 512, Recorder: rec})
		if err != nil {
			b.Fatal(err)
		}
		return host
	}
	gen := func(r parbor.Row, buf []uint64) {
		for i := range buf {
			buf[i] = 0xaaaaaaaaaaaaaaaa
		}
	}
	measure := func(host *parbor.Host, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			host.FullPass(gen)
		}
		return time.Since(start)
	}

	off := build(nil)
	on := build(parbor.NewCollector())
	// Warm both hosts before timing.
	measure(off, 1)
	measure(on, 1)
	var overheadPct float64
	for i := 0; i < b.N; i++ {
		const passes = 4
		tOff := measure(off, passes)
		tOn := measure(on, passes)
		overheadPct = 100 * (float64(tOn)/float64(tOff) - 1)
		if overheadPct > 50 {
			b.Fatalf("observability overhead %.1f%% on the full-pass hot loop; the enabled path must stay lock- and allocation-free", overheadPct)
		}
	}
	b.ReportMetric(overheadPct, "%overhead")
}

func benchHost(b *testing.B, vendor parbor.Vendor, seed uint64) *parbor.Host {
	b.Helper()
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "bench",
		Vendor:   vendor,
		Chips:    1,
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	host, err := parbor.NewHost(mod, 0)
	if err != nil {
		b.Fatal(err)
	}
	return host
}

func vendorByName(b *testing.B, name string) parbor.Vendor {
	b.Helper()
	switch name {
	case "A":
		return parbor.VendorA
	case "B":
		return parbor.VendorB
	case "C":
		return parbor.VendorC
	default:
		b.Fatalf("unknown vendor %q", name)
		return 0
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkAblationPerBankRefresh compares all-bank refresh (DDR3
// REF, the paper's model) with per-bank refresh (LPDDR REFpb): REFpb
// narrows the baseline's refresh penalty and therefore DC-REF's
// headroom — the trend that makes content-based refresh most valuable
// on all-bank parts.
func BenchmarkAblationPerBankRefresh(b *testing.B) {
	run := func(perBank bool, policy parbor.RefreshKind) float64 {
		res, err := parbor.RunSim(parbor.SimConfig{
			Workload:       parbor.Workloads(1, 8, 5)[0],
			Policy:         policy,
			Density:        parbor.Density32Gbit,
			SimNs:          1e6,
			PerBankRefresh: perBank,
			Seed:           9,
		})
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, ipc := range res.IPC {
			sum += ipc
		}
		return sum
	}
	var gainAllBank, gainPerBank float64
	for i := 0; i < b.N; i++ {
		gainAllBank = run(false, parbor.RefreshDCREF)/run(false, parbor.RefreshUniform) - 1
		gainPerBank = run(true, parbor.RefreshDCREF)/run(true, parbor.RefreshUniform) - 1
		if gainAllBank <= 0 {
			b.Fatalf("DC-REF gain under all-bank refresh = %.3f, want positive", gainAllBank)
		}
	}
	b.ReportMetric(100*gainAllBank, "%gain-allbank")
	b.ReportMetric(100*gainPerBank, "%gain-perbank")
}

// BenchmarkPassHotLoop measures the steady-state write-wait-read pass
// over a fixed victim-row set — the hot path under the recursive
// test, the classifier, and the online scheduler. The host is warmed
// first (row metadata materialized, scratch grown), so the loop
// measures exactly what repeats: per-pass bookkeeping, the write and
// read sweeps, and the retention wait. ReportAllocs guards the
// zero-allocation contract (see TestPassZeroAllocsSteadyState for the
// hard budget).
func BenchmarkPassHotLoop(b *testing.B) {
	for _, bench := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"sharded", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(bench.name, func(b *testing.B) {
			cc := parbor.DefaultCouplingConfig()
			cc.VulnerableRate = 2e-3
			mod, err := parbor.NewModule(parbor.ModuleConfig{
				Name:     "bench-pass",
				Vendor:   parbor.VendorA,
				Chips:    8,
				Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
				Coupling: cc,
				Faults:   parbor.DefaultFaultsConfig(),
				Seed:     42,
			})
			if err != nil {
				b.Fatal(err)
			}
			host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{WaitMs: 64, Parallelism: bench.parallelism})
			if err != nil {
				b.Fatal(err)
			}
			// 16 rows per chip, all of non-inverted polarity, written
			// all-zeros: the steady state of a quiet module, where a
			// pass finds nothing and should allocate nothing.
			words := host.Geometry().Words()
			var rows []parbor.Row
			data := make([][]uint64, 0, 8*16)
			for chip := 0; chip < host.Chips(); chip++ {
				for r := 0; r < 16; r++ {
					rows = append(rows, parbor.Row{Chip: chip, Bank: 0, Row: r * 4})
					data = append(data, make([]uint64, words))
				}
			}
			for warm := 0; warm < 3; warm++ {
				if _, err := host.Pass(rows, data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := host.Pass(rows, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullPassVictimDense measures the full-module sweep on a
// victim-dense chip — VulnerableRate 0.05 puts ~400 victims in every
// row, the regime of end-of-life parts and accelerated-stress tests.
// The 0xaa checkerboard on vendor A (even neighbor distances) is a
// detection-negative pattern: coupling conditions never complete, so
// the sweep's job is to establish that cheaply — the dominant regime
// of real testing, where most passes over most rows find nothing.
// The scalar path still walks all ~400 victims per row bit by bit;
// the mask planes dispose of each word in a handful of word ops.
// This is the axis where word-wide evaluation pulls furthest ahead:
// scalar cost grows linearly with the victim count while the sweep
// cost is bounded per word, so the gap widens with density (see
// BENCH_9.json for the measured curve). Compare with
// `-tags parborscalar` for the scalar cost at this density.
func BenchmarkFullPassVictimDense(b *testing.B) {
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 0.05
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     "bench-dense",
		Vendor:   parbor.VendorA,
		Chips:    8,
		Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     42,
	})
	if err != nil {
		b.Fatal(err)
	}
	host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{WaitMs: 512, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	row := make([]uint64, host.Geometry().Words())
	for i := range row {
		row[i] = 0xaaaaaaaaaaaaaaaa
	}
	src := func(parbor.Row) []uint64 { return row }
	// One warm pass materializes every row's victim population and
	// mask planes, so the loop measures the steady-state sweep.
	if _, err := host.FullPassRows(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := host.FullPassRows(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPassParallelism contrasts the serial test host with
// the chip-sharded host on an 8-chip module: the full-module
// write-wait-read sweep is the hot path of every detection
// experiment, and it scales with min(GOMAXPROCS, chips) workers.
func BenchmarkFullPassParallelism(b *testing.B) {
	for _, bench := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"sharded", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(bench.name, func(b *testing.B) {
			cc := parbor.DefaultCouplingConfig()
			cc.VulnerableRate = 2e-3
			mod, err := parbor.NewModule(parbor.ModuleConfig{
				Name:     "bench-par",
				Vendor:   parbor.VendorA,
				Chips:    8,
				Geometry: parbor.Geometry{Banks: 1, Rows: 256, Cols: 8192},
				Coupling: cc,
				Faults:   parbor.DefaultFaultsConfig(),
				Seed:     42,
			})
			if err != nil {
				b.Fatal(err)
			}
			host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{WaitMs: 512, Parallelism: bench.parallelism})
			if err != nil {
				b.Fatal(err)
			}
			// One immutable checker row aliased across the whole
			// module — the path the pipeline takes for its uniform
			// patterns (see patterns.Arena and memctl.RowSource).
			row := make([]uint64, host.Geometry().Words())
			for i := range row {
				row[i] = 0xaaaaaaaaaaaaaaaa
			}
			src := func(parbor.Row) []uint64 { return row }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := host.FullPassRows(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
