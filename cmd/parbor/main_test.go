package main

import "testing"

func TestParseVendor(t *testing.T) {
	for name, want := range map[string]string{
		"a": "A", "B": "B", "c": "C", "linear": "Linear", "TOY": "Toy",
	} {
		v, err := parseVendor(name)
		if err != nil {
			t.Fatalf("parseVendor(%q): %v", name, err)
		}
		if v.String() != want {
			t.Errorf("parseVendor(%q) = %v, want %s", name, v, want)
		}
	}
	if _, err := parseVendor("samsung"); err == nil {
		t.Error("unknown vendor accepted")
	}
}

func TestRunSmallModule(t *testing.T) {
	err := run(options{
		vendorName:    "toy",
		rows:          64,
		chips:         1,
		seed:          7,
		classify:      true,
		showMapping:   true,
		compareRandom: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRetentionProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("retention sweep")
	}
	err := run(options{
		vendorName: "B",
		rows:       64,
		chips:      1,
		seed:       9,
		profileRet: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
