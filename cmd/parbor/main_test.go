package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseVendor(t *testing.T) {
	for name, want := range map[string]string{
		"a": "A", "B": "B", "c": "C", "linear": "Linear", "TOY": "Toy",
	} {
		v, err := parseVendor(name)
		if err != nil {
			t.Fatalf("parseVendor(%q): %v", name, err)
		}
		if v.String() != want {
			t.Errorf("parseVendor(%q) = %v, want %s", name, v, want)
		}
	}
	if _, err := parseVendor("samsung"); err == nil {
		t.Error("unknown vendor accepted")
	}
}

func TestRunSmallModule(t *testing.T) {
	err := run(context.Background(), options{
		vendorName:    "toy",
		rows:          64,
		chips:         1,
		seed:          7,
		classify:      true,
		showMapping:   true,
		compareRandom: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRetentionProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("retention sweep")
	}
	err := run(context.Background(), options{
		vendorName: "B",
		rows:       64,
		chips:      1,
		seed:       9,
		profileRet: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunCancelled checks the pipeline honors an already-cancelled
// context instead of running to completion.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, options{vendorName: "toy", rows: 64, chips: 1, seed: 7})
	if err == nil {
		t.Fatal("run with cancelled ctx succeeded")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("run error %v does not mention cancellation", err)
	}
}

// TestRunOnlineCheckpointResume exercises the CLI's full
// interrupt/resume story: N epochs straight through must produce the
// same failure checksum as N/2 epochs, a checkpoint, and N/2 resumed
// epochs. The checksum lines printed by onlineEpochs are compared via
// the scheduler state embedded in the final checkpoints.
func TestRunOnlineCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	half := filepath.Join(dir, "half.json")
	resumed := filepath.Join(dir, "resumed.json")

	base := options{vendorName: "toy", rows: 64, chips: 2, seed: 7, timeout: time.Minute}

	// Uninterrupted: 6 epochs.
	opts := base
	opts.online = 6
	opts.checkpoint = full
	if err := run(context.Background(), opts); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Interrupted: 3 epochs + checkpoint, then resume for 3 more.
	opts = base
	opts.online = 3
	opts.checkpoint = half
	if err := run(context.Background(), opts); err != nil {
		t.Fatalf("first half: %v", err)
	}
	opts = options{resume: half, online: 3, checkpoint: resumed}
	if err := run(context.Background(), opts); err != nil {
		t.Fatalf("resumed half: %v", err)
	}

	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("resumed checkpoint differs from uninterrupted one:\n--- full ---\n%s\n--- resumed ---\n%s", a, b)
	}
}
