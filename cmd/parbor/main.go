// Command parbor runs the PARBOR detection pipeline against a
// simulated DRAM module and reports the detected neighbor locations,
// the test budget, the uncovered data-dependent failures, and the
// wall-clock such a run would take on real hardware.
//
// Usage:
//
//	parbor -vendor A -rows 512 -chips 8 -seed 42
//	parbor -vendor C -sample 5000 -compare-random
//	parbor -vendor B -classify -show-mapping
//	parbor -vendor A -profile-retention
//	parbor -vendor A -report out.json -cpuprofile cpu.pprof
//	parbor -vendor A -online 6
//	parbor -vendor A -online 3 -checkpoint sweep.json
//	parbor -resume sweep.json -online 3
//	parbor -vendor A -timeout 30s
//
// With -report, the run emits a structured observability report
// (schema parbor/report/v1, see DESIGN.md): the configuration, each
// stage's wall time and DRAM-command delta, command totals, test-host
// timing histograms, and the derived headline figures.
//
// With -online N, the detected distance set feeds N online-test
// epochs on a fresh twin module and the failure-set checksum is
// printed; -checkpoint writes a parbor/checkpoint/v1 snapshot after
// those epochs, and -resume continues a snapshotted sweep (module
// configuration comes from the snapshot; detection is skipped). A
// checkpointed-then-resumed sweep is bit-identical to an
// uninterrupted one.
//
// -timeout bounds the whole run, and SIGINT/SIGTERM cancel it
// cooperatively: in-flight passes stop at the next row-stride check.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parbor"
	"parbor/internal/checkpoint"
	"parbor/internal/core"
	"parbor/internal/memctl"
	"parbor/internal/obs"
	"parbor/internal/onlinetest"
	"parbor/internal/patterns"
	"parbor/internal/retention"
)

func main() {
	var (
		vendorFlag    = flag.String("vendor", "A", "vendor profile: A|B|C|linear|toy")
		rows          = flag.Int("rows", 512, "simulated rows per chip")
		chips         = flag.Int("chips", 8, "chips per module")
		sample        = flag.Int("sample", 0, "victim sample cap (0 = default 10000)")
		seed          = flag.Uint64("seed", 42, "module process-variation seed")
		compareRandom = flag.Bool("compare-random", false, "also run the equal-budget random-pattern baseline")
		classify      = flag.Bool("classify", false, "classify the victim sample by coupling class")
		extended      = flag.Bool("extended", false, "detect second-order neighbors from tail-gated victims (implies -classify)")
		profileRet    = flag.Bool("profile-retention", false, "profile per-row retention with the detected patterns")
		showMapping   = flag.Bool("show-mapping", false, "print the ground-truth mapping segments (simulation only)")
		report        = flag.String("report", "", "write a JSON observability report to this path")
		cpuprofile    = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memprofile    = flag.String("memprofile", "", "write a pprof heap profile to this path")
		timeout       = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		online        = flag.Int("online", 0, "run this many online-test epochs with the detected distances")
		ckpt          = flag.String("checkpoint", "", "write a checkpoint snapshot to this path after the online epochs")
		resume        = flag.String("resume", "", "resume an online sweep from this checkpoint (skips detection)")
	)
	flag.Parse()

	opts := options{
		vendorName:    *vendorFlag,
		rows:          *rows,
		chips:         *chips,
		sample:        *sample,
		seed:          *seed,
		compareRandom: *compareRandom,
		classify:      *classify || *extended,
		extended:      *extended,
		profileRet:    *profileRet,
		showMapping:   *showMapping,
		report:        *report,
		cpuprofile:    *cpuprofile,
		memprofile:    *memprofile,
		timeout:       *timeout,
		online:        *online,
		checkpoint:    *ckpt,
		resume:        *resume,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "parbor: %v\n", err)
		os.Exit(1)
	}
}

func parseVendor(s string) (parbor.Vendor, error) {
	switch strings.ToLower(s) {
	case "a":
		return parbor.VendorA, nil
	case "b":
		return parbor.VendorB, nil
	case "c":
		return parbor.VendorC, nil
	case "linear":
		return parbor.VendorLinear, nil
	case "toy":
		return parbor.VendorToy, nil
	default:
		return 0, fmt.Errorf("unknown vendor %q (want A, B, C, linear or toy)", s)
	}
}

type options struct {
	vendorName    string
	rows, chips   int
	sample        int
	seed          uint64
	compareRandom bool
	classify      bool
	extended      bool
	profileRet    bool
	showMapping   bool
	report        string
	cpuprofile    string
	memprofile    string
	timeout       time.Duration
	online        int
	checkpoint    string
	resume        string
}

func run(ctx context.Context, opts options) error {
	if opts.resume != "" {
		return runResume(ctx, opts)
	}
	vendorName, rows, chips, sample, seed := opts.vendorName, opts.rows, opts.chips, opts.sample, opts.seed
	vendor, err := parseVendor(vendorName)
	if err != nil {
		return err
	}
	stopProfiles, err := obs.StartProfiles(opts.cpuprofile, opts.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintf(os.Stderr, "parbor: %v\n", perr)
		}
	}()
	// The collector stays a nil interface unless a report was
	// requested, so the default run pays only nil checks.
	var (
		col *obs.Collector
		rec obs.Recorder
	)
	if opts.report != "" {
		col = obs.NewCollector()
		rec = col
		col.SetConfig("vendor", vendorName)
		col.SetConfig("rows", rows)
		col.SetConfig("chips", chips)
		col.SetConfig("sample", sample)
		col.SetConfig("seed", seed)
	}
	cols := 8192
	if vendor == parbor.VendorToy {
		cols = 1024
	}
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     vendorName + "1",
		Vendor:   vendor,
		Chips:    chips,
		Geometry: parbor.Geometry{Banks: 1, Rows: rows, Cols: cols},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     seed,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{Recorder: rec})
	if err != nil {
		return err
	}
	tester, err := parbor.NewTester(host, parbor.DetectConfig{SampleSize: sample, Seed: seed})
	if err != nil {
		return err
	}

	fmt.Printf("Module %s: vendor %s, %d chips x (%d rows x %d cols), seed %d\n\n",
		mod.Name(), mod.Vendor(), mod.Chips(), rows, cols, seed)

	if opts.showMapping {
		truth, err := parbor.NewMapping(vendor)
		if err != nil {
			return err
		}
		fmt.Println("Ground-truth mapping (simulation only; PARBOR never sees this):")
		for i, seg := range truth.Segments() {
			fmt.Printf("  segment %2d: %v\n", i, seg)
		}
		fmt.Printf("  distances: %v\n\n", truth.Distances())
	}

	stopDetect := col.StartStage("detect")
	report, err := tester.RunCtx(ctx)
	stopDetect()
	if err != nil {
		return err
	}
	nr := report.Neighbor
	fmt.Printf("Victim sample: %d cells (discovery: %d tests)\n", nr.SampleSize, nr.DiscoveryTests)
	fmt.Printf("Recursive neighbor detection: %d tests\n", nr.RecursionTests)
	for i, lvl := range nr.Levels {
		fmt.Printf("  L%d (region %4d bits): %2d tests, distances %v\n",
			i+1, lvl.RegionSize, lvl.Tests, lvl.Distances)
	}
	fmt.Printf("Neighbor distances: %v\n\n", nr.Distances)
	fmt.Printf("Full-chip neighbor-aware test: %d tests, %d failures\n",
		report.FullChipTests, len(report.FullChipFailures))
	fmt.Printf("Total budget: %d tests; all observed failures: %d\n",
		report.TotalTests(), len(report.AllFailures))

	// What this run would cost on real hardware (Appendix model).
	ttm := parbor.NewTestTimeModel()
	paperGeom := parbor.Geometry{Banks: 8, Rows: 32768, Cols: 8192}
	fmt.Printf("Wall-clock on a real 2GB module: %v\n",
		ttm.ParborTime(paperGeom, 8, report.TotalTests()).Round(1e7))

	if opts.classify {
		stopClassify := col.StartStage("classify")
		victims, _, _, err := tester.DiscoverVictimsCtx(ctx)
		if err != nil {
			stopClassify()
			return err
		}
		classified, tests, err := tester.ClassifyVictims(victims, nr.Distances)
		stopClassify()
		if err != nil {
			return err
		}
		counts := core.ClassCounts(classified)
		fmt.Printf("\nVictim classification (%d probe tests over %d victims):\n", tests, len(classified))
		for _, kind := range []core.CouplingKind{
			core.KindSingle, core.KindPair, core.KindContentIndependent, core.KindUnknown,
		} {
			fmt.Printf("  %-22s %d\n", kind.String()+":", counts[kind])
		}

		if opts.extended {
			tail := core.TailGated(classified)
			if len(tail) == 0 {
				fmt.Println("\nNo tail-gated victims: no second-order detection possible.")
			} else {
				stopExt := col.StartStage("extended")
				ext, err := tester.DetectExtendedNeighbors(tail, nr.Distances)
				stopExt()
				if err != nil {
					return err
				}
				fmt.Printf("\nSecond-order neighbor detection (%d victims, %d tests):\n",
					ext.Victims, ext.Tests)
				fmt.Printf("  second-order distances: %v\n", ext.Distances)
			}
		}
	}

	if opts.profileRet {
		host2, err := memctl.NewHostWithConfig(mod, memctl.HostConfig{Recorder: rec})
		if err != nil {
			return err
		}
		profiler, err := retention.New(host2, retention.Config{MinMs: 64, MaxMs: 4096})
		if err != nil {
			return err
		}
		chunk := 128
		if vendor == parbor.VendorToy {
			chunk = 16
		}
		pats, err := patterns.NeighborAware(nr.Distances, chunk)
		if err != nil {
			return err
		}
		stopRet := col.StartStage("retention-profile")
		profile, err := profiler.ProfileModuleCtx(ctx, pats)
		stopRet()
		if err != nil {
			return err
		}
		fmt.Printf("\nRetention profile (%d tests, neighbor-aware stress):\n", profile.Tests)
		for _, w := range profile.Waits {
			if n := profile.Histogram()[w]; n > 0 {
				fmt.Printf("  first failure at %6.0f ms: %5d rows\n", w, n)
			}
		}
		fmt.Printf("  never failed:             %5d rows\n", profile.Histogram()[retention.NoFailure])
		fmt.Printf("  weak-row fraction (<256 ms): %.1f%%\n", 100*profile.WeakRowFraction(256))
	}

	if opts.compareRandom {
		// Fresh identical module so the baseline sees the same chips.
		mod2, err := parbor.NewModule(parbor.ModuleConfig{
			Name:     mod.Name(),
			Vendor:   vendor,
			Chips:    chips,
			Geometry: parbor.Geometry{Banks: 1, Rows: rows, Cols: cols},
			Coupling: cc,
			Faults:   parbor.DefaultFaultsConfig(),
			Seed:     seed,
			Recorder: rec,
		})
		if err != nil {
			return err
		}
		host2, err := parbor.NewHostWithConfig(mod2, parbor.HostConfig{Recorder: rec})
		if err != nil {
			return err
		}
		tester2, err := parbor.NewTester(host2, parbor.DetectConfig{Seed: seed})
		if err != nil {
			return err
		}
		stopRnd := col.StartStage("random-baseline")
		random, err := tester2.RandomPatternTestCtx(ctx, report.TotalTests())
		stopRnd()
		if err != nil {
			return err
		}
		both := report.AllFailures.Intersect(random)
		fmt.Printf("\nEqual-budget random baseline: %d failures\n", len(random))
		fmt.Printf("  found only by PARBOR: %d\n", len(report.AllFailures)-both)
		fmt.Printf("  found only by random: %d\n", len(random)-both)
		fmt.Printf("  found by both:        %d\n", both)
	}
	if opts.online > 0 {
		stopOnline := col.StartStage("online")
		err := runOnline(ctx, opts, vendor, cols, rec, nr.Distances)
		stopOnline()
		if err != nil {
			return err
		}
	}

	if col != nil {
		col.SetFigure("discovery_tests", float64(nr.DiscoveryTests))
		col.SetFigure("recursion_tests", float64(nr.RecursionTests))
		col.SetFigure("fullchip_tests", float64(report.FullChipTests))
		col.SetFigure("total_tests", float64(report.TotalTests()))
		col.SetFigure("all_failures", float64(len(report.AllFailures)))
		col.SetFigure("sample_size", float64(nr.SampleSize))
		col.SetFigure("hw_wallclock_ms", float64(ttm.ParborTime(paperGeom, 8, report.TotalTests()))/1e6)
		rep := col.Snapshot("parbor")
		if err := rep.Reconcile(); err != nil {
			return fmt.Errorf("report does not reconcile: %w", err)
		}
		if err := rep.WriteFile(opts.report); err != nil {
			return err
		}
		fmt.Printf("\nObservability report written to %s\n", opts.report)
	}
	return nil
}

// onlineConfig is the scheduler configuration both the fresh-start and
// resume paths use, so a resumed sweep matches an uninterrupted one.
func onlineConfig(vendor parbor.Vendor, distances []int) onlinetest.Config {
	chunk := 128
	if vendor == parbor.VendorToy {
		chunk = 16
	}
	return onlinetest.Config{Distances: distances, ChunkBits: chunk}
}

// runOnline runs the requested online-test epochs on a fresh twin
// module (same configuration and seed as the detection target, so the
// sweep starts from a known machine state) and optionally checkpoints
// the sweep afterwards.
func runOnline(ctx context.Context, opts options, vendor parbor.Vendor, cols int, rec obs.Recorder, distances []int) error {
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     opts.vendorName + "1",
		Vendor:   vendor,
		Chips:    opts.chips,
		Geometry: parbor.Geometry{Banks: 1, Rows: opts.rows, Cols: cols},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     opts.seed,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{Recorder: rec})
	if err != nil {
		return err
	}
	sched, err := onlinetest.New(host, onlineConfig(vendor, distances))
	if err != nil {
		return err
	}
	fmt.Printf("\nOnline test sweep (%d epochs, distances %v):\n", opts.online, distances)
	return onlineEpochs(ctx, opts, mod, opts.seed, sched)
}

// runResume continues a checkpointed sweep: the module is rebuilt from
// the snapshot's identity and seed (the command line's module flags
// are ignored), the saved clocks are applied, and the scheduler picks
// up exactly where the snapshot left it.
func runResume(ctx context.Context, opts options) error {
	if opts.online <= 0 {
		return fmt.Errorf("-resume requires -online N (how many more epochs to run)")
	}
	snap, err := checkpoint.ReadFile(opts.resume)
	if err != nil {
		return err
	}
	vendor, err := parseVendor(snap.Module.Vendor)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", opts.resume, err)
	}
	var rec obs.Recorder
	cc := parbor.DefaultCouplingConfig()
	cc.VulnerableRate = 2e-3
	mod, err := parbor.NewModule(parbor.ModuleConfig{
		Name:     snap.Module.Name,
		Vendor:   vendor,
		Chips:    snap.Module.Chips,
		Geometry: parbor.Geometry{Banks: snap.Module.Banks, Rows: snap.Module.Rows, Cols: snap.Module.Cols},
		Coupling: cc,
		Faults:   parbor.DefaultFaultsConfig(),
		Seed:     snap.Seed,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	if err := snap.Apply(mod); err != nil {
		return err
	}
	host, err := parbor.NewHostWithConfig(mod, parbor.HostConfig{Recorder: rec})
	if err != nil {
		return err
	}
	sched, err := onlinetest.Resume(host, snap.Scheduler)
	if err != nil {
		return err
	}
	fmt.Printf("Resumed module %s (vendor %s, %d chips, seed %d) at %.1f%% sweep coverage\n",
		mod.Name(), mod.Vendor(), mod.Chips(), snap.Seed, 100*sched.Coverage())
	fmt.Printf("\nOnline test sweep (%d more epochs, distances %v):\n",
		opts.online, snap.Scheduler.Config.Distances)
	return onlineEpochs(ctx, opts, mod, snap.Seed, sched)
}

// onlineEpochs drives the shared epoch loop, prints the sweep summary
// with the failure-set checksum, and writes the checkpoint if one was
// requested.
func onlineEpochs(ctx context.Context, opts options, mod *parbor.Module, seed uint64, sched *onlinetest.Scheduler) error {
	for i := 0; i < opts.online; i++ {
		res, err := sched.RunEpochCtx(ctx)
		if err != nil {
			return fmt.Errorf("online epoch %d: %w", i+1, err)
		}
		line := fmt.Sprintf("  epoch %2d: %2d rows, %3d tests, %2d new failures",
			i+1, len(res.RowsTested), res.Tests, len(res.NewFailures))
		if res.Degraded {
			line += fmt.Sprintf(" [degraded: %d skipped, %d quarantined, %d unrestored]",
				len(res.SkippedRows), len(res.Quarantined), len(res.UnrestoredRows))
		}
		if res.SweepCompleted {
			line += " (sweep complete)"
		}
		fmt.Println(line)
	}
	fails := core.FailureSet(sched.Failures())
	fmt.Printf("Online sweep: coverage %.1f%%, %d rounds, %d tests, %d failures, checksum %s\n",
		100*sched.Coverage(), sched.Rounds(), sched.Tests(), len(fails), fails.Checksum())
	if q := sched.Quarantined(); len(q) > 0 {
		fmt.Printf("  quarantined chips: %v (%d retries, %d degraded epochs)\n",
			q, sched.Retries(), sched.DegradedEpochs())
	}
	if opts.checkpoint != "" {
		snap := checkpoint.Capture(mod, seed, sched.State())
		if err := snap.WriteFile(opts.checkpoint); err != nil {
			return err
		}
		fmt.Printf("Checkpoint written to %s\n", opts.checkpoint)
	}
	return nil
}
