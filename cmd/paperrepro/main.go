// Command paperrepro regenerates every table and figure of the
// PARBOR paper's evaluation against the simulated DRAM substrate.
//
// Usage:
//
//	paperrepro -exp all
//	paperrepro -exp table1
//	paperrepro -exp fig12 -rows 512 -modules 6
//	paperrepro -exp fig16 -workloads 32 -simns 2e6
//
// Experiments: table1, fig11, fig12, fig13, fig14, fig15, table2,
// fig16, appendix, retention, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"parbor/internal/exp"
)

func main() {
	var (
		which     = flag.String("exp", "all", "experiment to run: table1|fig11|fig12|fig13|fig14|fig15|table2|fig16|appendix|retention|all")
		rows      = flag.Int("rows", 512, "simulated rows per chip (detection experiments)")
		modules   = flag.Int("modules", 6, "modules per vendor (fig12)")
		seed      = flag.Uint64("seed", 42, "experiment seed")
		workloads = flag.Int("workloads", 32, "workload mixes (fig16)")
		simNs     = flag.Float64("simns", 2e6, "simulated nanoseconds per fig16 run")
	)
	flag.Parse()

	if err := run(*which, exp.Options{RowsPerChip: *rows, ModulesPerVendor: *modules, Seed: *seed},
		exp.Fig16Options{Workloads: *workloads, SimNs: *simNs, Seed: *seed}); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}

func run(which string, o exp.Options, fo exp.Fig16Options) error {
	all := which == "all"
	ran := false

	if all || which == "table1" {
		ran = true
		rows, err := exp.Table1(o)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable1(rows))
	}
	if all || which == "fig11" {
		ran = true
		rows, err := exp.Fig11(o)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFig11(rows))
	}
	if all || which == "fig12" {
		ran = true
		rows, err := exp.Fig12(o)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFig12(rows))
	}
	if all || which == "fig13" {
		ran = true
		rows, err := exp.Fig13(o)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFig13(rows))
	}
	if all || which == "fig14" {
		ran = true
		rows, err := exp.Fig14(o)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFig14(rows))
	}
	if all || which == "fig15" {
		ran = true
		rows, err := exp.Fig15(o, nil)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFig15(rows))
	}
	if all || which == "table2" {
		ran = true
		fmt.Println(exp.Table2())
	}
	if all || which == "fig16" {
		ran = true
		rows, summaries, err := exp.Fig16(fo)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFig16(rows, summaries))
	}
	if all || which == "appendix" {
		ran = true
		fmt.Println(exp.FormatAppendix(exp.Appendix()))
	}
	if all || which == "retention" {
		ran = true
		// Retention sweeps dozens of full passes per module; a smaller
		// module keeps it in the same time envelope as the figures.
		ro := o
		if ro.RowsPerChip > 128 {
			ro.RowsPerChip = 128
		}
		rows, err := exp.Retention(ro)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatRetention(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
