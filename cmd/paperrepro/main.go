// Command paperrepro regenerates every table and figure of the
// PARBOR paper's evaluation against the simulated DRAM substrate.
//
// Usage:
//
//	paperrepro -exp all
//	paperrepro -exp table1
//	paperrepro -exp fig12 -rows 512 -modules 6
//	paperrepro -exp fig16 -workloads 32 -simns 2e6
//	paperrepro -exp table1 -report out.json -memprofile mem.pprof
//
// Experiments: table1, fig11, fig12, fig13, fig14, fig15, table2,
// fig16, appendix, retention, all.
//
// -timeout bounds the whole run, and SIGINT/SIGTERM cancel it
// cooperatively; a cancelled run exits with an error instead of
// printing partial tables.
//
// With -report, the run emits a structured observability report
// (schema parbor/report/v1, see DESIGN.md) with one stage per
// experiment: its wall time, the DRAM commands the substrate issued
// while it ran, test-host pass histograms, and headline figures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"parbor/internal/exp"
	"parbor/internal/obs"
)

func main() {
	var (
		which      = flag.String("exp", "all", "experiment to run: table1|fig11|fig12|fig13|fig14|fig15|table2|fig16|appendix|retention|all")
		rows       = flag.Int("rows", 512, "simulated rows per chip (detection experiments)")
		modules    = flag.Int("modules", 6, "modules per vendor (fig12)")
		seed       = flag.Uint64("seed", 42, "experiment seed")
		workloads  = flag.Int("workloads", 32, "workload mixes (fig16)")
		simNs      = flag.Float64("simns", 2e6, "simulated nanoseconds per fig16 run")
		report     = flag.String("report", "", "write a JSON observability report to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this path")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
	var col *obs.Collector
	o := exp.Options{RowsPerChip: *rows, ModulesPerVendor: *modules, Seed: *seed}
	if *report != "" {
		col = obs.NewCollector()
		o.Recorder = col
		col.SetConfig("exp", *which)
		col.SetConfig("rows", *rows)
		col.SetConfig("modules", *modules)
		col.SetConfig("seed", *seed)
	}
	err = run(ctx, *which, o, exp.Fig16Options{Workloads: *workloads, SimNs: *simNs, Seed: *seed}, col)
	if err == nil && col != nil {
		rep := col.Snapshot("paperrepro")
		if rerr := rep.Reconcile(); rerr != nil {
			err = fmt.Errorf("report does not reconcile: %w", rerr)
		} else if werr := rep.WriteFile(*report); werr != nil {
			err = werr
		} else {
			fmt.Printf("Observability report written to %s\n", *report)
		}
	}
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, which string, o exp.Options, fo exp.Fig16Options, col *obs.Collector) error {
	all := which == "all"
	ran := false
	// stage wraps one experiment in a collector stage so the report
	// attributes wall time and DRAM commands per figure.
	stage := func(name string, fn func() error) error {
		stop := col.StartStage(name)
		defer stop()
		return fn()
	}

	if all || which == "table1" {
		ran = true
		if err := stage("table1", func() error {
			rows, err := exp.Table1Ctx(ctx, o)
			if err != nil {
				return err
			}
			for _, r := range rows {
				col.SetFigure("table1_tests_"+r.Vendor, float64(r.Total))
			}
			fmt.Println(exp.FormatTable1(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "fig11" {
		ran = true
		if err := stage("fig11", func() error {
			rows, err := exp.Fig11Ctx(ctx, o)
			if err != nil {
				return err
			}
			fmt.Println(exp.FormatFig11(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "fig12" {
		ran = true
		if err := stage("fig12", func() error {
			rows, err := exp.Fig12Ctx(ctx, o)
			if err != nil {
				return err
			}
			col.SetFigure("fig12_mean_pct_increase", exp.MeanPctIncrease(rows))
			fmt.Println(exp.FormatFig12(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "fig13" {
		ran = true
		if err := stage("fig13", func() error {
			rows, err := exp.Fig13Ctx(ctx, o)
			if err != nil {
				return err
			}
			fmt.Println(exp.FormatFig13(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "fig14" {
		ran = true
		if err := stage("fig14", func() error {
			rows, err := exp.Fig14Ctx(ctx, o)
			if err != nil {
				return err
			}
			fmt.Println(exp.FormatFig14(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "fig15" {
		ran = true
		if err := stage("fig15", func() error {
			rows, err := exp.Fig15Ctx(ctx, o, nil)
			if err != nil {
				return err
			}
			fmt.Println(exp.FormatFig15(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "table2" {
		ran = true
		fmt.Println(exp.Table2())
	}
	if all || which == "fig16" {
		ran = true
		if err := stage("fig16", func() error {
			rows, summaries, err := exp.Fig16Ctx(ctx, fo)
			if err != nil {
				return err
			}
			for _, s := range summaries {
				col.SetFigure("fig16_dcref_vs_base_pct_"+s.Density.String(), s.DCREFvsBase)
			}
			fmt.Println(exp.FormatFig16(rows, summaries))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == "appendix" {
		ran = true
		fmt.Println(exp.FormatAppendix(exp.Appendix()))
	}
	if all || which == "retention" {
		ran = true
		if err := stage("retention", func() error {
			// Retention sweeps dozens of full passes per module; a
			// smaller module keeps it in the same time envelope as
			// the figures.
			ro := o
			if ro.RowsPerChip > 128 {
				ro.RowsPerChip = 128
			}
			rows, err := exp.RetentionCtx(ctx, ro)
			if err != nil {
				return err
			}
			fmt.Println(exp.FormatRetention(rows))
			return nil
		}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
