package main

import (
	"testing"

	"parbor/internal/exp"
	"parbor/internal/sim"
)

func tinyOpts() (exp.Options, exp.Fig16Options) {
	return exp.Options{RowsPerChip: 128, Chips: 1, ModulesPerVendor: 1, Seed: 42},
		exp.Fig16Options{Workloads: 1, Cores: 2, SimNs: 5e5, Seed: 42,
			Densities: []sim.Density{sim.Density16Gbit}}
}

func TestRunEachExperiment(t *testing.T) {
	o, fo := tinyOpts()
	for _, which := range []string{
		"table1", "fig11", "fig12", "fig13", "fig14", "fig15", "table2", "fig16", "appendix", "retention",
	} {
		if err := run(which, o, fo); err != nil {
			t.Errorf("run(%q): %v", which, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	o, fo := tinyOpts()
	if err := run("bogus", o, fo); err == nil {
		t.Error("unknown experiment accepted")
	}
}
