package main

import (
	"context"
	"testing"

	"parbor/internal/exp"
	"parbor/internal/obs"
	"parbor/internal/sim"
)

func tinyOpts() (exp.Options, exp.Fig16Options) {
	return exp.Options{RowsPerChip: 128, Chips: 1, ModulesPerVendor: 1, Seed: 42},
		exp.Fig16Options{Workloads: 1, Cores: 2, SimNs: 5e5, Seed: 42,
			Densities: []sim.Density{sim.Density16Gbit}}
}

func TestRunEachExperiment(t *testing.T) {
	o, fo := tinyOpts()
	for _, which := range []string{
		"table1", "fig11", "fig12", "fig13", "fig14", "fig15", "table2", "fig16", "appendix", "retention",
	} {
		if err := run(context.Background(), which, o, fo, nil); err != nil {
			t.Errorf("run(%q): %v", which, err)
		}
	}
}

func TestRunWithCollectorReconciles(t *testing.T) {
	o, fo := tinyOpts()
	col := obs.NewCollector()
	o.Recorder = col
	if err := run(context.Background(), "table1", o, fo, col); err != nil {
		t.Fatalf("run(table1): %v", err)
	}
	rep := col.Snapshot("paperrepro-test")
	if err := rep.Reconcile(); err != nil {
		t.Fatalf("report does not reconcile: %v", err)
	}
	if rep.Commands["activate"] == 0 {
		t.Fatal("no DRAM commands recorded for an instrumented table1 run")
	}
	if rep.Figures["table1_tests_A"] != 90 || rep.Figures["table1_tests_B"] != 66 || rep.Figures["table1_tests_C"] != 90 {
		t.Fatalf("table1 figures %v, want 90/66/90", rep.Figures)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "table1" {
		t.Fatalf("stages %v, want one table1 stage", rep.Stages)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	o, fo := tinyOpts()
	if err := run(context.Background(), "bogus", o, fo, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}
