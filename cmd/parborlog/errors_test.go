package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"parbor/internal/fleetlog"
	"parbor/internal/memctl"
)

// writeSegmentedLog writes the same population as writeLog but under a
// tiny segment budget, so the log spans several segment files. Returns
// the segment filenames in sequence order.
func writeSegmentedLog(t *testing.T, dir string) []string {
	t.Helper()
	w, err := fleetlog.OpenWriter(dir, fleetlog.WriterOptions{SegmentBytes: 32})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	a := func(row, col int) memctl.BitAddr {
		return memctl.BitAddr{Row: int32(row), Col: int32(col)}
	}
	for _, ev := range []fleetlog.Event{
		{Module: "mod-a", Epoch: 1, Fails: []memctl.BitAddr{a(3, 7)}},
		{Module: "mod-a", Epoch: 2, Fails: []memctl.BitAddr{a(3, 7)}},
		{Module: "mod-b", Epoch: 1, Fails: []memctl.BitAddr{a(5, 1), a(5, 9)}},
		{Module: "mod-c", Epoch: 1},
	} {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segmentNames(t, dir)
	if len(segs) < 3 {
		t.Fatalf("wanted a multi-segment log, got %d segments", len(segs))
	}
	return segs
}

// segmentNames lists the .seg files in sequence order (the zero-padded
// numeric prefix makes that lexical order).
func segmentNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestRunMissingDir exercises every mode against a directory that does
// not exist: each must fail rather than invent an empty result.
func TestRunMissingDir(t *testing.T) {
	nope := filepath.Join(t.TempDir(), "nope")
	for name, opts := range map[string]options{
		"rollup":  {dir: nope},
		"dump":    {dir: nope, dump: true},
		"compact": {dir: nope, compact: filepath.Join(t.TempDir(), "out")},
		"gc":      {dir: nope, gc: 2, gcOn: true},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), opts, &out); err == nil {
			t.Errorf("%s of a missing dir succeeded:\n%s", name, out.String())
		}
	}
}

// TestRunModeExclusion covers the -gc arm of the mutual-exclusion
// check (the -dump/-compact pair is covered by TestRunValidation).
func TestRunModeExclusion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), options{dir: "x", dump: true, gc: 1, gcOn: true}, &out); err == nil {
		t.Error("-dump with -gc accepted")
	}
	if err := run(context.Background(), options{dir: "x", compact: "y", gc: 1, gcOn: true}, &out); err == nil {
		t.Error("-compact with -gc accepted")
	}
}

// TestRunTruncatedSegmentMidStream tears the tail off a NON-last
// segment. The reader must recover — skip the torn record, keep
// streaming the later segments — in both -dump and rollup modes,
// because a field log is full of crash debris from old daemon
// incarnations and analysis cannot stop at the first one.
func TestRunTruncatedSegmentMidStream(t *testing.T) {
	dir := t.TempDir()
	segs := writeSegmentedLog(t, dir)

	first := filepath.Join(dir, segs[0])
	st, err := os.Stat(first)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(first, st.Size()-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	var dump bytes.Buffer
	if err := run(context.Background(), options{dir: dir, dump: true}, &dump); err != nil {
		t.Fatalf("dump with mid-stream tear: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(dump.String()), "\n")
	if len(lines) == 0 || len(lines) >= 4 {
		t.Fatalf("dumped %d lines, want 1..3 (torn record dropped, rest kept):\n%s", len(lines), dump.String())
	}
	for _, ln := range lines {
		var ev fleetlog.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Errorf("surviving dump line is not JSON: %v: %s", err, ln)
		}
	}

	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir}, &out); err != nil {
		t.Fatalf("rollup with mid-stream tear: %v", err)
	}
	var r fleetlog.Rollup
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("rollup output: %v", err)
	}
	if r.Events != len(lines) {
		t.Errorf("rollup saw %d events, dump saw %d", r.Events, len(lines))
	}
}

// TestRunCorruptSegmentMidStream overwrites a middle segment with
// bytes that were never a fleetlog segment. That is corruption, not a
// tear: recovery must refuse to quietly eat it.
func TestRunCorruptSegmentMidStream(t *testing.T) {
	dir := t.TempDir()
	segs := writeSegmentedLog(t, dir)
	mid := filepath.Join(dir, segs[1])
	if err := os.WriteFile(mid, []byte("this was never a fleetlog segment"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir, dump: true}, &out); err == nil {
		t.Error("dump streamed past a corrupt segment")
	}
	if err := run(context.Background(), options{dir: dir}, &out); err == nil {
		t.Error("rollup streamed past a corrupt segment")
	}
}

// TestRunCompactUnwritableTarget points -compact at a path where a
// regular file already sits, so the destination directory cannot be
// created.
func TestRunCompactUnwritableTarget(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir)
	dst := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(dst, []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir, compact: dst}, &out); err == nil {
		t.Error("compact into a file path succeeded")
	}
}

// TestRunGC drives the retention mode end to end: collect down to two
// segments, verify the removal report, verify the survivors still
// roll up, and verify a second pass is a no-op.
func TestRunGC(t *testing.T) {
	dir := t.TempDir()
	segs := writeSegmentedLog(t, dir)

	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir, gc: 2, gcOn: true}, &out); err != nil {
		t.Fatalf("run -gc 2: %v", err)
	}
	var rep struct {
		Removed []string `json:"removed"`
		Kept    int      `json:"kept"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("gc report output: %v\n%s", err, out.String())
	}
	if rep.Kept != 2 || len(rep.Removed) != len(segs)-2 {
		t.Errorf("gc removed %v kept %d, want %d removed", rep.Removed, rep.Kept, len(segs)-2)
	}
	if got := segmentNames(t, dir); len(got) != 2 || got[1] != segs[len(segs)-1] {
		t.Errorf("segments after gc: %v (tail was %s)", got, segs[len(segs)-1])
	}

	// The survivors are still a valid log.
	out.Reset()
	if err := run(context.Background(), options{dir: dir}, &out); err != nil {
		t.Fatalf("rollup after gc: %v", err)
	}

	// GC is idempotent: a second pass at the same retention removes
	// nothing.
	out.Reset()
	if err := run(context.Background(), options{dir: dir, gc: 2, gcOn: true}, &out); err != nil {
		t.Fatalf("second -gc 2: %v", err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("gc report output: %v", err)
	}
	if len(rep.Removed) != 0 {
		t.Errorf("idempotent gc removed %v", rep.Removed)
	}
}
