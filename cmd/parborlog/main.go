// Command parborlog is the offline analyzer for parbord's failure
// event log (-log-dir): it folds an append-only fleetlog directory —
// arbitrarily many daemon incarnations' worth of epochs, including
// torn tails from crashes — into the parbor/fleetlog-rollup/v1
// fault-mode classification, without ever holding the event stream in
// memory.
//
// Usage:
//
//	parborlog -dir /var/lib/parbord/log              # rollup JSON to stdout
//	parborlog -dir /var/lib/parbord/log -dump        # raw events, JSON lines
//	parborlog -dir /var/lib/parbord/log -compact out # rewrite minus torn tails
//
// -mem-budget bounds the classifier's in-memory key set; past it,
// sorted runs spill to -spill (default: a temp dir) and are k-way
// merged, so a log of any size classifies in bounded memory. The
// rollup is a pure function of the event set: order, duplicated
// replays, segment boundaries, and the memory budget cannot change a
// byte of the output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"parbor/internal/fleetlog"
)

func main() {
	var (
		dir       = flag.String("dir", "", "fleetlog directory to analyze (required)")
		dump      = flag.Bool("dump", false, "print raw events as JSON lines instead of the rollup")
		compact   = flag.String("compact", "", "rewrite the log into this directory (drops torn tails) instead of analyzing")
		memBudget = flag.Int("mem-budget", 0, "classifier in-memory key budget before spilling (0 = default)")
		spill     = flag.String("spill", "", "directory for spill runs (empty = temp dir)")
		segBytes  = flag.Int64("segment-bytes", 0, "segment size for -compact output (0 = default)")
	)
	flag.Parse()

	if err := run(context.Background(), options{
		dir:       *dir,
		dump:      *dump,
		compact:   *compact,
		memBudget: *memBudget,
		spill:     *spill,
		segBytes:  *segBytes,
	}, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "parborlog: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	dir       string
	dump      bool
	compact   string
	memBudget int
	spill     string
	segBytes  int64
}

func run(ctx context.Context, opts options, stdout io.Writer) error {
	if opts.dir == "" {
		return errors.New("-dir is required")
	}
	if opts.dump && opts.compact != "" {
		return errors.New("-dump and -compact are mutually exclusive")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	switch {
	case opts.compact != "":
		return runCompact(opts, stdout)
	case opts.dump:
		return runDump(opts, stdout)
	default:
		return runRollup(opts, stdout)
	}
}

// runRollup streams the log through the out-of-core classifier and
// prints the rollup.
func runRollup(opts options, stdout io.Writer) error {
	r, err := fleetlog.Analyze(opts.dir, fleetlog.ClassifierConfig{
		MaxKeys:  opts.memBudget,
		SpillDir: opts.spill,
	})
	if err != nil {
		return err
	}
	return writeJSON(stdout, r)
}

// runDump prints every intact event as one JSON object per line, plus
// a trailing truncation report on stderr when the log has torn tails.
func runDump(opts options, stdout io.Writer) error {
	it, err := fleetlog.OpenIter(opts.dir)
	if err != nil {
		return err
	}
	defer it.Close()
	enc := json.NewEncoder(stdout)
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	for _, tr := range it.Truncations() {
		fmt.Fprintf(os.Stderr, "parborlog: torn tail in %s at byte %d (recovered)\n", tr.Segment, tr.CleanBytes)
	}
	return nil
}

// runCompact rewrites the log into a fresh directory and prints the
// stats.
func runCompact(opts options, stdout io.Writer) error {
	stats, err := fleetlog.Compact(opts.dir, opts.compact, fleetlog.WriterOptions{SegmentBytes: opts.segBytes})
	if err != nil {
		return err
	}
	return writeJSON(stdout, stats)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
