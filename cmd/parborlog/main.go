// Command parborlog is the offline analyzer for parbord's failure
// event log (-log-dir): it folds an append-only fleetlog directory —
// arbitrarily many daemon incarnations' worth of epochs, including
// torn tails from crashes — into the parbor/fleetlog-rollup/v1
// fault-mode classification, without ever holding the event stream in
// memory.
//
// Usage:
//
//	parborlog -dir /var/lib/parbord/log              # rollup JSON to stdout
//	parborlog -dir /var/lib/parbord/log -dump        # raw events, JSON lines
//	parborlog -dir /var/lib/parbord/log -compact out # rewrite minus torn tails
//	parborlog -dir /var/lib/parbord/log -gc 4        # drop all but 4 newest segments
//
// -mem-budget bounds the classifier's in-memory key set; past it,
// sorted runs spill to -spill (default: a temp dir) and are k-way
// merged, so a log of any size classifies in bounded memory. The
// rollup is a pure function of the event set: order, duplicated
// replays, segment boundaries, and the memory budget cannot change a
// byte of the output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"parbor/internal/fleetlog"
)

func main() {
	var (
		dir       = flag.String("dir", "", "fleetlog directory to analyze (required)")
		dump      = flag.Bool("dump", false, "print raw events as JSON lines instead of the rollup")
		compact   = flag.String("compact", "", "rewrite the log into this directory (drops torn tails) instead of analyzing")
		memBudget = flag.Int("mem-budget", 0, "classifier in-memory key budget before spilling (0 = default)")
		spill     = flag.String("spill", "", "directory for spill runs (empty = temp dir)")
		segBytes  = flag.Int64("segment-bytes", 0, "segment size for -compact output (0 = default)")
		gc        = flag.Int("gc", -1, "garbage-collect the log to this many newest segments (the active tail always survives); -1 = off")
	)
	flag.Parse()

	opts := options{
		dir:       *dir,
		dump:      *dump,
		compact:   *compact,
		memBudget: *memBudget,
		spill:     *spill,
		segBytes:  *segBytes,
	}
	// -gc 0 is a meaningful request (keep only the active tail), so
	// the off state is the -1 default, not the zero value.
	if *gc >= 0 {
		opts.gc, opts.gcOn = *gc, true
	}
	if err := run(context.Background(), opts, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "parborlog: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	dir       string
	dump      bool
	compact   string
	memBudget int
	spill     string
	segBytes  int64
	gc        int
	gcOn      bool
}

func run(ctx context.Context, opts options, stdout io.Writer) error {
	if opts.dir == "" {
		return errors.New("-dir is required")
	}
	modes := 0
	for _, on := range []bool{opts.dump, opts.compact != "", opts.gcOn} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-dump, -compact, and -gc are mutually exclusive")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	switch {
	case opts.compact != "":
		return runCompact(opts, stdout)
	case opts.dump:
		return runDump(opts, stdout)
	case opts.gcOn:
		return runGC(opts, stdout)
	default:
		return runRollup(opts, stdout)
	}
}

// runGC applies the retention policy and prints what was removed.
func runGC(opts options, stdout io.Writer) error {
	keep := opts.gc
	if keep < 1 {
		keep = 1 // GC never removes the active tail
	}
	removed, err := fleetlog.GC(opts.dir, keep)
	if err != nil {
		return err
	}
	if removed == nil {
		removed = []string{}
	}
	return writeJSON(stdout, map[string]any{"removed": removed, "kept": keep})
}

// runRollup streams the log through the out-of-core classifier and
// prints the rollup.
func runRollup(opts options, stdout io.Writer) error {
	r, err := fleetlog.Analyze(opts.dir, fleetlog.ClassifierConfig{
		MaxKeys:  opts.memBudget,
		SpillDir: opts.spill,
	})
	if err != nil {
		return err
	}
	return writeJSON(stdout, r)
}

// runDump prints every intact event as one JSON object per line, plus
// a trailing truncation report on stderr when the log has torn tails.
func runDump(opts options, stdout io.Writer) error {
	it, err := fleetlog.OpenIter(opts.dir)
	if err != nil {
		return err
	}
	//parbor:droperr read-side iterator close; dump output is already complete or errored
	defer it.Close()
	enc := json.NewEncoder(stdout)
	for {
		ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	for _, tr := range it.Truncations() {
		fmt.Fprintf(os.Stderr, "parborlog: torn tail in %s at byte %d (recovered)\n", tr.Segment, tr.CleanBytes)
	}
	return nil
}

// runCompact rewrites the log into a fresh directory and prints the
// stats.
func runCompact(opts options, stdout io.Writer) error {
	stats, err := fleetlog.Compact(opts.dir, opts.compact, fleetlog.WriterOptions{SegmentBytes: opts.segBytes})
	if err != nil {
		return err
	}
	return writeJSON(stdout, stats)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
