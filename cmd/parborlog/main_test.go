package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbor/internal/fleetlog"
	"parbor/internal/memctl"
)

// writeLog builds a small log directory with a known failure
// population: mod-a has a permanent single-bit fault (seen in epochs 1
// and 2), mod-b a transient single-row fault, mod-c is clean.
func writeLog(t *testing.T, dir string) {
	t.Helper()
	w, err := fleetlog.OpenWriter(dir, fleetlog.WriterOptions{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	a := func(row, col int) memctl.BitAddr {
		return memctl.BitAddr{Row: int32(row), Col: int32(col)}
	}
	for _, ev := range []fleetlog.Event{
		{Module: "mod-a", Epoch: 1, Fails: []memctl.BitAddr{a(3, 7)}},
		{Module: "mod-a", Epoch: 2, Fails: []memctl.BitAddr{a(3, 7)}},
		{Module: "mod-b", Epoch: 1, Fails: []memctl.BitAddr{a(5, 1), a(5, 9)}},
		{Module: "mod-c", Epoch: 1},
	} {
		if err := w.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRunRollup(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir)
	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var r fleetlog.Rollup
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("rollup output is not JSON: %v\n%s", err, out.String())
	}
	if r.Schema != fleetlog.RollupSchema {
		t.Errorf("schema %q", r.Schema)
	}
	if r.Modules != 3 || r.FailingModules != 2 || r.Failures != 3 {
		t.Errorf("rollup counts off: %+v", r)
	}
	if r.Permanent != 1 || r.Transient != 2 {
		t.Errorf("permanence split off: %+v", r)
	}
	if r.ByMode[fleetlog.ModeSingleBit] != 1 || r.ByMode[fleetlog.ModeSingleRow] != 1 {
		t.Errorf("mode split off: %v", r.ByMode)
	}
}

func TestRunRollupTinyMemBudget(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir)
	var big, small bytes.Buffer
	if err := run(context.Background(), options{dir: dir}, &big); err != nil {
		t.Fatalf("run: %v", err)
	}
	// A 2-key budget forces spill-and-merge on nearly every add; the
	// output must not change by a byte.
	if err := run(context.Background(), options{dir: dir, memBudget: 2, spill: t.TempDir()}, &small); err != nil {
		t.Fatalf("run with tiny budget: %v", err)
	}
	if big.String() != small.String() {
		t.Errorf("memory budget changed the rollup:\n%s\nvs\n%s", big.String(), small.String())
	}
}

func TestRunDump(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir)
	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir, dump: true}, &out); err != nil {
		t.Fatalf("run -dump: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dumped %d lines, want 4:\n%s", len(lines), out.String())
	}
	var ev fleetlog.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("dump line is not JSON: %v", err)
	}
	if ev.Module != "mod-a" || ev.Epoch != 1 {
		t.Errorf("first dumped event drifted: %+v", ev)
	}
}

func TestRunCompact(t *testing.T) {
	dir, dst := t.TempDir(), filepath.Join(t.TempDir(), "out")
	writeLog(t, dir)
	var out bytes.Buffer
	if err := run(context.Background(), options{dir: dir, compact: dst}, &out); err != nil {
		t.Fatalf("run -compact: %v", err)
	}
	var stats fleetlog.CompactStats
	if err := json.Unmarshal(out.Bytes(), &stats); err != nil {
		t.Fatalf("compact stats output: %v", err)
	}
	if stats.Events != 4 || stats.Truncations != 0 {
		t.Errorf("compact stats off: %+v", stats)
	}
	if entries, err := os.ReadDir(dst); err != nil || len(entries) == 0 {
		t.Errorf("compacted log missing: %v (%d entries)", err, len(entries))
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), options{}, &out); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := run(context.Background(), options{dir: "x", dump: true, compact: "y"}, &out); err == nil {
		t.Error("-dump with -compact accepted")
	}
	if err := run(context.Background(), options{dir: filepath.Join(t.TempDir(), "nope")}, &out); err == nil {
		t.Error("missing log dir accepted")
	}
}
