package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbor/internal/coupling"
	"parbor/internal/faults"
	"parbor/internal/fleet"
	"parbor/internal/onlinetest"
)

// writeEnrollFile writes a JSON enrollment array of n tiny modules and
// returns its path.
func writeEnrollFile(t *testing.T, n int) string {
	t.Helper()
	var entries []fleet.StateEntry
	for i := 0; i < n; i++ {
		entries = append(entries, fleet.StateEntry{
			Schema: fleet.StateSchema,
			Spec: fleet.ModuleSpec{
				ID:     "smoke-" + string(rune('a'+i)),
				Vendor: "toy",
				Chips:  2,
				Banks:  1,
				Rows:   8,
				Cols:   64,
				Seed:   uint64(7000 + i),
				WaitMs: 400,
				Coupling: coupling.Config{
					VulnerableRate:  0.05,
					StrongLeftFrac:  0.4,
					StrongRightFrac: 0.4,
					RetentionMinMs:  100,
					RetentionMaxMs:  300,
				},
				Faults: faults.Config{WeakCellRate: 0.01},
				Test: onlinetest.Config{
					Distances:    []int{-1, 1},
					ChunkBits:    16,
					RowsPerEpoch: 8,
					MaxRetries:   3,
				},
				MaxEpochs: 3,
			},
		})
	}
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatalf("marshal enroll file: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write enroll file: %v", err)
	}
	return path
}

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), options{resume: true}); err == nil {
		t.Error("-resume without -state accepted")
	}
	if err := run(context.Background(), options{enroll: filepath.Join(t.TempDir(), "nope.json"), runToIdle: true}); err == nil {
		t.Error("missing enroll file accepted")
	}
	if err := run(context.Background(), options{chaosSeed: 1, chaosProb: 2, runToIdle: true}); err == nil {
		t.Error("out-of-range -diskchaos-prob accepted")
	}
}

// TestRunToIdleAndResume is the daemon's end-to-end smoke: enroll a
// small fleet from a file, run it to idle with state and log
// directories, then resume from the persisted state and verify the
// second incarnation finds every module already done.
func TestRunToIdleAndResume(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	logDir := filepath.Join(t.TempDir(), "log")
	enroll := writeEnrollFile(t, 2)

	err := run(context.Background(), options{
		workers:   2,
		stateDir:  stateDir,
		enroll:    enroll,
		runToIdle: true,
		logDir:    logDir,
		logRetain: 4,
	})
	if err != nil {
		t.Fatalf("run to idle: %v", err)
	}

	states, err := os.ReadDir(stateDir)
	if err != nil || len(states) != 2 {
		t.Fatalf("state dir after drain: %v (%d entries, want 2)", err, len(states))
	}
	for _, e := range states {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("state dir holds temp debris %s", e.Name())
		}
	}
	segs, err := os.ReadDir(logDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("log dir after drain: %v (%d entries)", err, len(segs))
	}

	// Second incarnation: resume from state, run to idle again. Every
	// module is at its epoch budget, so this quiesces immediately —
	// but it must still load all entries and persist them back.
	err = run(context.Background(), options{
		stateDir:  stateDir,
		resume:    true,
		runToIdle: true,
	})
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	states, err = os.ReadDir(stateDir)
	if err != nil || len(states) != 2 {
		t.Fatalf("state dir after resume: %v (%d entries, want 2)", err, len(states))
	}
}

// TestRunWithDiskChaos runs the same fleet with the deterministic
// fault injector wired under all durable state. The daemon must
// complete the run — degrading and recovering as faults land — and
// still leave a loadable state directory.
func TestRunWithDiskChaos(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	logDir := filepath.Join(t.TempDir(), "log")

	err := run(context.Background(), options{
		workers:   2,
		stateDir:  stateDir,
		enroll:    writeEnrollFile(t, 2),
		runToIdle: true,
		logDir:    logDir,
		chaosSeed: 41,
		chaosProb: 0.02,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	// The post-crash contract: whatever survived must be loadable with
	// a clean filesystem.
	d, err := fleet.NewDaemon(fleet.Config{StateDir: stateDir})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	if n, err := d.LoadState(); err != nil || n != 2 {
		t.Fatalf("LoadState after chaos run: %v (%d modules, want 2)", err, n)
	}
}
