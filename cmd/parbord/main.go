// Command parbord is the PARBOR fleet daemon: it multiplexes
// thousands of checkpointed online-test sweeps over a bounded worker
// pool and serves an HTTP/JSON API to enroll modules, stream
// per-module reports and checkpoints, and query fleet-wide failure
// rollups — the field-study deployment shape (one agent per machine
// park, per-vendor failure populations).
//
// Usage:
//
//	parbord -listen 127.0.0.1:7799 -state /var/lib/parbord
//	parbord -state /var/lib/parbord -resume
//	parbord -enroll fleet.json -run-to-idle -rollup
//
// The scheduling quantum is one transactional online-test epoch:
// every enrolled module is checkpointed (parbor/checkpoint/v1)
// after each completed epoch, so SIGTERM is always a graceful drain —
// in-flight epochs finish, every module's state entry is persisted to
// -state, and a later `parbord -resume` continues each sweep
// bit-identically to an uninterrupted run.
//
// -enroll takes a JSON array of fleet state entries
// ({"schema":"parbor/fleet-state/v1","spec":{...},"snapshot":{...}});
// the snapshot is optional, and plain enrollment bodies as accepted
// by POST /v1/modules can be converted by wrapping them in the entry
// schema. With -run-to-idle the daemon exits once no module wants
// another epoch (instead of waiting for a signal); -rollup prints the
// final fleet rollup JSON to stdout on exit.
//
// API routes are documented in internal/fleet/api.go and DESIGN.md
// section 11.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parbor/internal/faultfs"
	"parbor/internal/fleet"
)

func main() {
	var (
		listen    = flag.String("listen", "", "serve the HTTP API on this address (empty = no API)")
		workers   = flag.Int("workers", 0, "epoch scheduler worker bound (0 = GOMAXPROCS)")
		stateDir  = flag.String("state", "", "persist per-module state entries in this directory on drain")
		resume    = flag.Bool("resume", false, "enroll every state entry found in -state before starting")
		enroll    = flag.String("enroll", "", "enroll modules from this JSON file (array of fleet state entries)")
		runToIdle = flag.Bool("run-to-idle", false, "exit when the fleet quiesces instead of waiting for a signal")
		rollup    = flag.Bool("rollup", false, "print the final fleet rollup JSON to stdout on exit")
		logDir    = flag.String("log-dir", "", "append failure events to the fleetlog in this directory (serves GET /v1/analytics)")
		logRetain = flag.Int("log-retain", 0, "garbage-collect the event log to this many newest segments after each drain (0 = keep everything)")

		// Disk-chaos soak flags: not for production. A nonzero seed
		// routes all durable state through a deterministic fault
		// injector so operators (and CI) can watch the daemon degrade
		// and recover under real storage failures.
		chaosSeed = flag.Uint64("diskchaos-seed", 0, "TESTING: inject deterministic disk faults seeded with this value (0 = off)")
		chaosProb = flag.Float64("diskchaos-prob", 0.005, "TESTING: per-operation fault probability for -diskchaos-seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, options{
		listen:    *listen,
		workers:   *workers,
		stateDir:  *stateDir,
		resume:    *resume,
		enroll:    *enroll,
		runToIdle: *runToIdle,
		rollup:    *rollup,
		logDir:    *logDir,
		logRetain: *logRetain,
		chaosSeed: *chaosSeed,
		chaosProb: *chaosProb,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "parbord: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	listen    string
	workers   int
	stateDir  string
	resume    bool
	enroll    string
	runToIdle bool
	rollup    bool
	logDir    string
	logRetain int
	chaosSeed uint64
	chaosProb float64
}

func run(ctx context.Context, opts options) (err error) {
	if opts.resume && opts.stateDir == "" {
		return errors.New("-resume needs -state")
	}
	var fsys faultfs.FS
	if opts.chaosSeed != 0 {
		p := opts.chaosProb
		inj, err := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorConfig{
			Seed:           opts.chaosSeed,
			WriteErrProb:   p,
			ShortWriteProb: p,
			SyncErrProb:    p,
			ReadErrProb:    p,
			RenameErrProb:  p,
		})
		if err != nil {
			return err
		}
		fsys = inj
		fmt.Fprintf(os.Stderr, "parbord: DISK CHAOS ACTIVE (seed %d, p=%g): injecting storage faults into all durable state\n", opts.chaosSeed, p)
	}
	d, err := fleet.NewDaemon(fleet.Config{
		Workers:   opts.workers,
		StateDir:  opts.stateDir,
		LogDir:    opts.logDir,
		LogRetain: opts.logRetain,
		FS:        fsys,
	})
	if err != nil {
		return err
	}
	// Close flushes the event log's final backlog; a failure there is
	// lost data and must surface as the run's error rather than be
	// dropped with the defer.
	defer func() {
		if cerr := d.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing daemon: %w", cerr)
		}
	}()

	if opts.resume {
		n, err := d.LoadState()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "parbord: resumed %d modules from %s\n", n, opts.stateDir)
	}
	if opts.enroll != "" {
		n, err := enrollFile(d, opts.enroll)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "parbord: enrolled %d modules from %s\n", n, opts.enroll)
	}

	// The API server, if any, lives for the whole run and is shut
	// down after the drain so operators can watch the fleet go quiet.
	var srv *http.Server
	serveErr := make(chan error, 1)
	if opts.listen != "" {
		ln, err := net.Listen("tcp", opts.listen)
		if err != nil {
			return fmt.Errorf("listening on %s: %w", opts.listen, err)
		}
		srv = &http.Server{
			Handler: d.Handler(),
			// Production timeouts: a client that stalls mid-header or
			// trickles a body must not pin a connection (and its
			// goroutine) forever. No WriteTimeout: /v1/analytics
			// legitimately streams a large log; Shutdown's deadline
			// bounds the drain instead.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			IdleTimeout:       2 * time.Minute,
			MaxHeaderBytes:    1 << 20,
		}
		go func() { serveErr <- srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "parbord: serving on %s (%d workers)\n", ln.Addr(), d.Pool().Workers())
	}

	d.Start(ctx)
	if opts.runToIdle {
		// Quiesce on a watcher goroutine so a signal still interrupts
		// a fleet that never goes idle (unbounded modules).
		idle := make(chan struct{})
		go func() { d.Quiesce(); close(idle) }()
		select {
		case <-idle:
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done()
	}

	// Graceful drain: every in-flight epoch completes, every module is
	// left with a current checkpoint, the event log (with -log-dir) is
	// synced, and (with -state) the fleet is persisted.
	drainErr := d.Drain()
	fmt.Fprintf(os.Stderr, "parbord: drained; %d modules enrolled\n", d.Registry().Len())

	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "parbord: api shutdown: %v\n", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("api server: %w", err)
		}
	}

	if opts.rollup {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d.Rollup()); err != nil {
			return err
		}
	}
	return drainErr
}

// enrollFile enrolls every entry of a JSON array of fleet state
// entries.
func enrollFile(d *fleet.Daemon, path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var entries []fleet.StateEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	for i, e := range entries {
		if e.Schema != fleet.StateSchema {
			return i, fmt.Errorf("%s entry %d: unknown schema %q", path, i, e.Schema)
		}
		if _, err := d.Enroll(e.Spec, e.Snapshot); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}
