package main

import "testing"

func TestParseDensities(t *testing.T) {
	for gbit, want := range map[int]int{0: 2, 16: 1, 32: 1} {
		ds, err := parseDensities(gbit)
		if err != nil {
			t.Fatalf("parseDensities(%d): %v", gbit, err)
		}
		if len(ds) != want {
			t.Errorf("parseDensities(%d) = %d densities, want %d", gbit, len(ds), want)
		}
	}
	if _, err := parseDensities(64); err == nil {
		t.Error("unsupported density accepted")
	}
}
