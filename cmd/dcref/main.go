// Command dcref runs the DC-REF refresh study (paper, Section 8): it
// simulates multi-programmed workloads on a DDR3 system under the
// uniform baseline, RAIDR, and DC-REF refresh policies and reports
// weighted speedups and refresh counts.
//
// Usage:
//
//	dcref -workloads 8 -density 32 -simns 2e6
//	dcref -list-apps
//	dcref -workloads 8 -report out.json -cpuprofile cpu.pprof
//
// -timeout bounds the run, and SIGINT/SIGTERM cancel it
// cooperatively: remaining workload cells are not dispatched.
//
// With -report, the run emits a structured observability report
// (schema parbor/report/v1, see DESIGN.md) carrying the run
// configuration, the study's wall time, and the headline summary
// figures per density. The refresh study runs on the command-level
// DDR3 simulator, not the DRAM test substrate, so the report's
// DRAM-command section is empty.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"parbor"
	"parbor/internal/exp"
	"parbor/internal/obs"
	"parbor/internal/sim"
)

// parseDensities maps the -density flag to the evaluated densities.
func parseDensities(gbit int) ([]sim.Density, error) {
	switch gbit {
	case 0:
		return []sim.Density{sim.Density16Gbit, sim.Density32Gbit}, nil
	case 16:
		return []sim.Density{sim.Density16Gbit}, nil
	case 32:
		return []sim.Density{sim.Density32Gbit}, nil
	default:
		return nil, fmt.Errorf("unsupported density %d (want 16 or 32)", gbit)
	}
}

func main() {
	var (
		workloads  = flag.Int("workloads", 8, "number of 8-core workload mixes")
		cores      = flag.Int("cores", 8, "cores per mix")
		density    = flag.Int("density", 0, "chip density in Gbit: 16, 32, or 0 for both")
		simNs      = flag.Float64("simns", 2e6, "simulated nanoseconds per run")
		seed       = flag.Uint64("seed", 42, "workload and simulation seed")
		listApps   = flag.Bool("list-apps", false, "print the application profiles and exit")
		report     = flag.String("report", "", "write a JSON observability report to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this path")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *listApps {
		fmt.Printf("%-12s%8s%10s%10s%12s%12s\n", "App", "MPKI", "RowLoc", "WriteFr", "Rows", "MatchProb")
		for _, a := range parbor.SPECApps() {
			fmt.Printf("%-12s%8.1f%10.2f%10.2f%12d%12.2f\n",
				a.Name, a.MPKI, a.RowLocality, a.WriteFrac, a.FootprintRows, a.ContentMatchProb)
		}
		return
	}

	densities, err := parseDensities(*density)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcref: %v\n", err)
		os.Exit(1)
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcref: %v\n", err)
		os.Exit(1)
	}
	var col *obs.Collector
	if *report != "" {
		col = obs.NewCollector()
		col.SetConfig("workloads", *workloads)
		col.SetConfig("cores", *cores)
		col.SetConfig("density", *density)
		col.SetConfig("simns", *simNs)
		col.SetConfig("seed", *seed)
	}

	stopStudy := col.StartStage("fig16")
	rows, summaries, err := exp.Fig16Ctx(ctx, exp.Fig16Options{
		Workloads: *workloads,
		Cores:     *cores,
		SimNs:     *simNs,
		Densities: densities,
		Seed:      *seed,
	})
	stopStudy()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcref: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(exp.Table2())
	fmt.Println(exp.FormatFig16(rows, summaries))

	if col != nil {
		for _, s := range summaries {
			d := s.Density.String()
			col.SetFigure("dcref_vs_base_pct_"+d, s.DCREFvsBase)
			col.SetFigure("dcref_vs_raidr_pct_"+d, s.DCREFvsRAIDR)
			col.SetFigure("refresh_reduction_pct_"+d, s.RefReductionVsBase)
		}
		rep := col.Snapshot("dcref")
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintf(os.Stderr, "dcref: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Observability report written to %s\n", *report)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "dcref: %v\n", err)
		os.Exit(1)
	}
}
