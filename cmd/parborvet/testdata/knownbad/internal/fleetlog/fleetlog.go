// Package fleetlog trips faultfs exactly once: a direct os.WriteFile
// in a storage-scope package, bypassing the fault-injection seam.
package fleetlog

import "os"

// Persist writes durable state without going through the seam.
func Persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
