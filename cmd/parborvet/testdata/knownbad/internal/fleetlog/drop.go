// This file trips syncdrop exactly once: a discarded Sync error on a
// durable path.
package fleetlog

// segment stands in for an open log segment.
type segment struct{}

// Sync flushes to stable storage.
func (s *segment) Sync() error { return nil }

// Checkpoint drops the only evidence the data reached disk.
func Checkpoint(s *segment) {
	s.Sync()
}
