// Package fleet trips lockguard exactly once: a //parbor:guardedby
// field read without its mutex held.
package fleet

import "sync"

// Registry mirrors the real fleet registry's guarded shape.
type Registry struct {
	mu   sync.Mutex
	rows int //parbor:guardedby mu
}

// Rows reads the guarded field without taking the lock.
func (r *Registry) Rows() int {
	return r.rows
}

// Add holds the lock correctly, so only Rows trips the pass.
func (r *Registry) Add(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rows += n
}
