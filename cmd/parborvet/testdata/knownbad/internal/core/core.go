// Package core trips each hotalloc diagnostic exactly once: a
// formatting allocation inside a //parbor:hotpath function, a hot
// function rebuilding mask planes, and a contradictory
// hotpath+planebuild annotation.
package core

import "fmt"

// Label formats on the hot path.
//
//parbor:hotpath
func Label(row int) string {
	return fmt.Sprintf("row-%d", row)
}

// BuildPlanes is once-per-materialization plane construction.
//
//parbor:planebuild
func BuildPlanes(rows []int) []int {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r*2)
	}
	return out
}

// Sweep rebuilds the planes on every read.
//
//parbor:hotpath
func Sweep(rows []int) int {
	return BuildPlanes(rows)[0]
}

// SweepAndBuild claims to be both the hot loop and the build.
//
//parbor:hotpath
//parbor:planebuild
func SweepAndBuild(rows []int) int {
	return rows[0]
}
