// Package core trips hotalloc exactly once: a formatting allocation
// inside a //parbor:hotpath function.
package core

import "fmt"

// Label formats on the hot path.
//
//parbor:hotpath
func Label(row int) string {
	return fmt.Sprintf("row-%d", row)
}
