// Package dram trips simdeterminism exactly once: a wall-clock read
// in a simulation package.
package dram

import "time"

// Seeded stamps results with the wall clock.
func Seeded() int64 {
	return time.Now().UnixNano()
}
