// Package rng mirrors just enough of parbor/internal/rng for the
// rngstream type checks; it is itself clean.
package rng

// Source is a deterministic stream.
type Source struct{ state uint64 }

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Split allocates an independent child stream.
func (s *Source) Split() *Source { return &Source{state: s.Uint64()} }

// Child derives the i-th child stream without mutating the parent.
func (s Source) Child(i uint64) Source { return Source{state: s.state ^ (i*2654435761 + 1)} }
