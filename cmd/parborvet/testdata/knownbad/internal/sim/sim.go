// Package sim trips rngstream exactly once: the allocating Split
// derivation inside a //parbor:hotpath function.
package sim

import "knownbad/internal/rng"

// Shard derives with Split on the hot path.
//
//parbor:hotpath
func Shard(src *rng.Source) uint64 {
	child := src.Split()
	return child.Uint64()
}
