// Package memctl trips ctxthread exactly once: a context-holding
// entry point that drives rows through the non-Ctx shim.
package memctl

import "context"

// Host drives rows.
type Host struct{ rows int }

// PassCtx runs one pass, checking for cancellation per row.
func (h *Host) PassCtx(ctx context.Context) error {
	for r := 0; r < h.rows; r++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Pass is the compat shim.
func (h *Host) Pass() error {
	return h.PassCtx(context.Background())
}

// Sweep holds a context but calls the non-Ctx Pass.
func Sweep(ctx context.Context, h *Host, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := h.Pass(); err != nil {
			return err
		}
	}
	return nil
}
