// Package obs trips obsnilsafe exactly once: an exported
// pointer-receiver method on a Recorder implementor with no
// nil-receiver guard.
package obs

// Recorder receives observability events.
type Recorder interface {
	Add(name string, n uint64)
}

// Sink implements Recorder without guarding its receiver.
type Sink struct{ n uint64 }

// Add implements Recorder.
func (s *Sink) Add(name string, n uint64) {
	s.n += n
}
