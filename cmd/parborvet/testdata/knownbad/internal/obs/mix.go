// This file trips atomicmix exactly once: hits is atomic in Inc but
// read plainly in Torn. Tally deliberately does not implement
// Recorder, so obsnilsafe stays out of the accounting.
package obs

import "sync/atomic"

// Tally counts events in the address-based atomic style.
type Tally struct{ hits uint64 }

// Inc records one event.
func (t *Tally) Inc() { atomic.AddUint64(&t.hits, 1) }

// Torn reads the counter plainly.
func (t *Tally) Torn() uint64 { return t.hits }
