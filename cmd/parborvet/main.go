// Command parborvet is the repository's analysis suite: six
// golang.org/x/tools/go/analysis passes that mechanically enforce the
// invariants every published figure rests on — seed-determinism of
// the simulation packages, per-shard rng stream derivation, context
// threading through row/chip loops, nil-safe observability, the
// zero-allocation pass hot loop, and storage packages routing durable
// I/O through the parbor/internal/faultfs seam.
//
// It speaks the go vet unitchecker protocol, so it is run through the
// build system rather than standalone:
//
//	go build -o parborvet ./cmd/parborvet
//	go vet -vettool=$PWD/parborvet ./...
//
// or simply `make vet`. Individual analyzers can be selected the
// usual way: `go vet -vettool=$PWD/parborvet -simdeterminism ./...`.
// DESIGN.md section 10 documents each analyzer and the
// //parbor:hotpath / //parbor:wallclock / //parbor:rawfs annotation
// contract.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"parbor/internal/analyzers/ctxthread"
	"parbor/internal/analyzers/faultfs"
	"parbor/internal/analyzers/hotalloc"
	"parbor/internal/analyzers/obsnilsafe"
	"parbor/internal/analyzers/rngstream"
	"parbor/internal/analyzers/simdeterminism"
)

func main() {
	unitchecker.Main(
		simdeterminism.Analyzer,
		rngstream.Analyzer,
		ctxthread.Analyzer,
		obsnilsafe.Analyzer,
		hotalloc.Analyzer,
		faultfs.Analyzer,
	)
}
