// Command parborvet is the repository's analysis suite: nine
// golang.org/x/tools/go/analysis passes that mechanically enforce the
// invariants every published figure rests on — seed-determinism of
// the simulation packages, per-shard rng stream derivation, context
// threading through row/chip loops, nil-safe observability, the
// zero-allocation pass hot loop, storage packages routing durable
// I/O through the parbor/internal/faultfs seam, and the three
// flow-sensitive passes: //parbor:guardedby mutex discipline
// (lockguard), atomic/plain access mixing (atomicmix), and durable
// error flow (syncdrop).
//
// It speaks the go vet unitchecker protocol, so it is run through the
// build system rather than standalone:
//
//	go build -o parborvet ./cmd/parborvet
//	go vet -vettool=$PWD/parborvet ./...
//
// or simply `make vet`. Individual analyzers can be selected the
// usual way: `go vet -vettool=$PWD/parborvet -simdeterminism ./...`.
// DESIGN.md sections 10 and 15 document each analyzer and the
// //parbor:* annotation contract.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"parbor/internal/analyzers/atomicmix"
	"parbor/internal/analyzers/ctxthread"
	"parbor/internal/analyzers/faultfs"
	"parbor/internal/analyzers/hotalloc"
	"parbor/internal/analyzers/lockguard"
	"parbor/internal/analyzers/obsnilsafe"
	"parbor/internal/analyzers/rngstream"
	"parbor/internal/analyzers/simdeterminism"
	"parbor/internal/analyzers/syncdrop"
)

func main() {
	unitchecker.Main(
		simdeterminism.Analyzer,
		rngstream.Analyzer,
		ctxthread.Analyzer,
		obsnilsafe.Analyzer,
		hotalloc.Analyzer,
		faultfs.Analyzer,
		lockguard.Analyzer,
		atomicmix.Analyzer,
		syncdrop.Analyzer,
	)
}
