package main_test

import (
	"strings"
	"testing"

	"parbor/internal/analyzers/atest"
)

// analyzers lists every analyzer the multichecker registers; the
// knownbad fixture is built so each fires exactly once.
var analyzers = []string{
	"simdeterminism",
	"rngstream",
	"ctxthread",
	"obsnilsafe",
	"hotalloc",
	"faultfs",
}

// TestKnownBadFiresEachAnalyzerOnce runs the full vet pipeline over
// the knownbad fixture module and asserts each registered analyzer
// produces exactly one diagnostic — proving every analyzer is wired
// into the binary and scoped onto the fixture's packages.
func TestKnownBadFiresEachAnalyzerOnce(t *testing.T) {
	diags := atest.Vet(t, "testdata/knownbad")
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	for _, name := range analyzers {
		if counts[name] != 1 {
			t.Errorf("analyzer %s fired %d times, want exactly 1", name, counts[name])
		}
	}
	for name, n := range counts {
		known := false
		for _, want := range analyzers {
			if name == want {
				known = true
			}
		}
		if !known {
			t.Errorf("unregistered analyzer %s fired %d times", name, n)
		}
	}
	if len(diags) != len(analyzers) {
		for _, d := range diags {
			t.Logf("diagnostic: %s:%d: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
		}
	}
}

// TestKnownBadFailsPlainVet asserts the exact invocation CI and
// `make vet` use exits nonzero on the fixture, so a diagnostic
// anywhere actually gates the build. Plain vet output carries the
// message but not the analyzer name, so each analyzer is recognized
// by a distinctive fragment of its diagnostic.
func TestKnownBadFailsPlainVet(t *testing.T) {
	failed, out := atest.VetFails(t, "testdata/knownbad")
	if !failed {
		t.Fatalf("go vet -vettool=parborvet exited zero on the knownbad fixture\noutput:\n%s", out)
	}
	fragments := map[string]string{
		"simdeterminism": "breaks seed-determinism",
		"rngstream":      "rng.Split allocates its child stream",
		"ctxthread":      "holds a context but calls",
		"obsnilsafe":     "nil-receiver guard",
		"hotalloc":       "fmt.Sprintf in //parbor:hotpath",
		"faultfs":        "bypasses the fault plane",
	}
	for name, fragment := range fragments {
		if !strings.Contains(out, fragment) {
			t.Errorf("plain vet output carries no %s diagnostic (looked for %q)\noutput:\n%s", name, fragment, out)
		}
	}
}
