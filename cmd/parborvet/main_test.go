package main_test

import (
	"strings"
	"testing"

	"parbor/internal/analyzers/atest"
)

// analyzers maps every analyzer the multichecker registers to the
// number of diagnostics the knownbad fixture provokes from it. Each
// distinct diagnostic fires exactly once; hotalloc carries three
// (hot-path allocation, hot-path plane rebuild, and the contradictory
// hotpath+planebuild annotation), asserted individually by fragment
// in TestKnownBadFailsPlainVet.
var analyzers = map[string]int{
	"simdeterminism": 1,
	"rngstream":      1,
	"ctxthread":      1,
	"obsnilsafe":     1,
	"hotalloc":       3,
	"faultfs":        1,
	"lockguard":      1,
	"atomicmix":      1,
	"syncdrop":       1,
}

// TestKnownBadFiresEachAnalyzerOnce runs the full vet pipeline over
// the knownbad fixture module and asserts each registered analyzer
// produces exactly its expected diagnostics — proving every analyzer
// is wired into the binary and scoped onto the fixture's packages.
func TestKnownBadFiresEachAnalyzerOnce(t *testing.T) {
	diags := atest.Vet(t, "testdata/knownbad")
	counts := make(map[string]int)
	want := 0
	for _, n := range analyzers {
		want += n
	}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	for name, n := range analyzers {
		if counts[name] != n {
			t.Errorf("analyzer %s fired %d times, want exactly %d", name, counts[name], n)
		}
	}
	for name, n := range counts {
		if _, known := analyzers[name]; !known {
			t.Errorf("unregistered analyzer %s fired %d times", name, n)
		}
	}
	if len(diags) != want {
		for _, d := range diags {
			t.Logf("diagnostic: %s:%d: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
		}
	}
}

// TestKnownBadFailsPlainVet asserts the exact invocation CI and
// `make vet` use exits nonzero on the fixture, so a diagnostic
// anywhere actually gates the build. Plain vet output carries the
// message but not the analyzer name, so each analyzer is recognized
// by a distinctive fragment of its diagnostic.
func TestKnownBadFailsPlainVet(t *testing.T) {
	failed, out := atest.VetFails(t, "testdata/knownbad")
	if !failed {
		t.Fatalf("go vet -vettool=parborvet exited zero on the knownbad fixture\noutput:\n%s", out)
	}
	fragments := map[string]string{
		"simdeterminism":     "breaks seed-determinism",
		"rngstream":          "rng.Split allocates its child stream",
		"ctxthread":          "holds a context but calls",
		"obsnilsafe":         "nil-receiver guard",
		"hotalloc":           "fmt.Sprintf in //parbor:hotpath",
		"hotalloc/planecall": "calls //parbor:planebuild function",
		"hotalloc/conflict":  "conflicting //parbor:hotpath and //parbor:planebuild",
		"faultfs":            "bypasses the fault plane",
		"lockguard":          "accessed without holding",
		"atomicmix":          "plain access races",
		"syncdrop":           "discarded on a durable path",
	}
	for name, fragment := range fragments {
		if n := strings.Count(out, fragment); n != 1 {
			t.Errorf("plain vet output carries %d %s diagnostics (looked for %q, want exactly 1)\noutput:\n%s", n, name, fragment, out)
		}
	}
}
