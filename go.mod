module parbor

go 1.22
